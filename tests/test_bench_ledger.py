"""Tests for the bench regression ledger (``repro bench``).

Pins the gate semantics the CI perf-smoke job relies on: rolling-median
baselines, the noise allowance, first-run bootstrap, torn-tail recovery
of the append-only history, and the CLI round trip that records a
``BENCH_*.json`` payload and fails — naming the metric and its baseline —
when a gated metric regresses.
"""

import json

import pytest

from repro.analysis.ledger import (
    DEFAULT_ALLOWANCE,
    DEFAULT_WINDOW,
    BenchLedger,
    LedgerError,
    Regression,
    check_metrics,
    classify_metric,
    flatten_metrics,
    load_bench_file,
)
from repro.study.cli import main


# ----------------------------------------------------------------------
class TestMetricClassification:
    def test_lower_is_better_names(self):
        for name in ("results.load.columnar_s", "batched_ms",
                     "warm_seconds", "runtime.latency_p50", "end_to_end_s"):
            assert classify_metric(name) == "lower"

    def test_higher_is_better_names(self):
        for name in ("results.combined.speedup", "runs_per_s",
                     "tasks_per_second", "throughput_runs",
                     "cache.hit_rate"):
            assert classify_metric(name) == "higher"

    def test_ungated_names(self):
        for name in ("records", "chunk_size", "shard_bytes.npz",
                     "identical_json", "cells"):
            assert classify_metric(name) is None

    def test_only_the_leaf_is_classified(self):
        # The namespace must not leak into classification: a payload
        # called BENCH_rates.json does not make every metric "higher".
        assert classify_metric("rates.records") is None
        assert classify_metric("speedup.records") is None

    def test_flatten_keeps_numbers_drops_bools(self):
        flat = flatten_metrics({
            "load": {"record_s": 1.5, "speedup": 3.0},
            "identical": True,
            "note": "text",
            "records": 100,
        })
        assert flat == {"load.record_s": 1.5, "load.speedup": 3.0,
                        "records": 100.0}

    def test_load_bench_file_namespaces_by_stem(self, tmp_path):
        path = tmp_path / "BENCH_results.json"
        path.write_text(json.dumps({"load": {"columnar_s": 0.25}}))
        assert load_bench_file(path) == {"results.load.columnar_s": 0.25}

    def test_load_bench_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(LedgerError, match="not a JSON object"):
            load_bench_file(path)
        with pytest.raises(LedgerError, match="cannot read"):
            load_bench_file(tmp_path / "absent.json")


# ----------------------------------------------------------------------
class TestCheckMetrics:
    def _history(self, *values, metric="x.run_s"):
        return [{metric: v} for v in values]

    def test_bootstrap_passes_with_no_history(self):
        assert check_metrics({"x.run_s": 123.0}, []) == []

    def test_within_allowance_passes(self):
        history = self._history(1.0, 1.0, 1.0)
        assert check_metrics({"x.run_s": 1.19}, history) == []

    def test_past_allowance_fails_lower_is_better(self):
        history = self._history(1.0, 1.0, 1.0)
        (regression,) = check_metrics({"x.run_s": 1.3}, history)
        assert regression.metric == "x.run_s"
        assert regression.baseline == 1.0
        assert regression.direction == "lower"

    def test_past_allowance_fails_higher_is_better(self):
        history = self._history(10.0, 10.0, metric="x.speedup")
        (regression,) = check_metrics({"x.speedup": 7.9}, history)
        assert regression.direction == "higher"
        assert check_metrics({"x.speedup": 8.1}, history) == []

    def test_baseline_is_rolling_median_of_window(self):
        # Window 3 over [1, 1, 1, 9, 1, 1] → last three are [9, 1, 1],
        # median 1: one noisy spike must not move the baseline.
        history = self._history(1.0, 1.0, 1.0, 9.0, 1.0, 1.0)
        (regression,) = check_metrics({"x.run_s": 1.5}, history, window=3)
        assert regression.baseline == 1.0
        # A window that is all spike *does* move it (median of [9,1] = 5).
        assert check_metrics({"x.run_s": 1.5}, history[:5],
                             window=2) == []

    def test_even_window_takes_midpoint(self):
        history = self._history(1.0, 3.0)
        (regression,) = check_metrics({"x.run_s": 99.0}, history, window=2)
        assert regression.baseline == 2.0

    def test_unclassified_metrics_never_gate(self):
        history = [{"x.records": 100.0}]
        assert check_metrics({"x.records": 1.0}, history) == []

    def test_improvement_never_fails(self):
        assert check_metrics({"x.run_s": 0.1},
                             self._history(1.0, 1.0)) == []
        assert check_metrics({"x.speedup": 50.0},
                             [{"x.speedup": 5.0}]) == []

    def test_metric_absent_from_history_bootstraps(self):
        history = self._history(1.0, 1.0)
        assert check_metrics({"y.other_s": 9.0}, history) == []

    def test_invalid_window_and_allowance_rejected(self):
        with pytest.raises(LedgerError, match="window"):
            check_metrics({}, [], window=0)
        with pytest.raises(LedgerError, match="allowance"):
            check_metrics({}, [], allowance=-0.1)

    def test_describe_names_metric_and_baseline(self):
        regression = Regression(metric="x.run_s", value=1.3, baseline=1.0,
                                direction="lower",
                                allowance=DEFAULT_ALLOWANCE,
                                window=DEFAULT_WINDOW)
        text = regression.describe()
        assert "x.run_s" in text
        assert "1.3" in text and "rolling-median baseline 1" in text
        assert "30.0% slower" in text
        assert "allowance 20%" in text

    def test_zero_baseline_ratio_is_defined(self):
        assert Regression("m_s", 1.0, 0.0, "lower", 0.2, 5).ratio == \
            float("inf")
        assert Regression("m_s", 0.0, 0.0, "lower", 0.2, 5).ratio == 1.0


# ----------------------------------------------------------------------
class TestLedgerDurability:
    def test_record_then_history_round_trip(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.jsonl")
        assert ledger.entries() == []
        ledger.record({"x.run_s": 1.0}, run="run-1", timestamp=100.0)
        ledger.record({"x.run_s": 1.1}, run="run-2", timestamp=200.0)
        entries = ledger.entries()
        assert [e["run"] for e in entries] == ["run-1", "run-2"]
        assert ledger.history() == [{"x.run_s": 1.0}, {"x.run_s": 1.1}]

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = BenchLedger(path)
        ledger.record({"x.run_s": 1.0})
        # A kill mid-append leaves a half line with no newline: it was
        # never committed and must vanish from the history.
        with open(path, "ab") as handle:
            handle.write(b'{"ts": 1, "run": null, "metr')
        assert ledger.history() == [{"x.run_s": 1.0}]
        # The next append commits after the torn bytes; committed
        # history must include it again.
        # (Append-only: the torn tail is left in place, the reader keeps
        # stopping at it.)
        assert len(ledger.entries()) == 1

    def test_corrupt_committed_line_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        BenchLedger(path).record({"x.run_s": 1.0})
        with open(path, "ab") as handle:
            handle.write(b"{not json}\n")
        with pytest.raises(LedgerError, match="corrupt"):
            BenchLedger(path).entries()

    def test_entry_without_metrics_object_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ts": 1, "run": null, "metrics": 5}\n')
        with pytest.raises(LedgerError, match="unreadable committed"):
            BenchLedger(path).entries()

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        BenchLedger(path).record({"x.run_s": 1.0})
        with open(path, "ab") as handle:
            handle.write(b"\n")
        BenchLedger(path).record({"x.run_s": 2.0})
        assert BenchLedger(path).history() == [
            {"x.run_s": 1.0}, {"x.run_s": 2.0}]

    def test_check_uses_committed_history(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.jsonl")
        for _ in range(3):
            ledger.record({"x.run_s": 1.0})
        assert ledger.check({"x.run_s": 1.1}) == []
        (regression,) = ledger.check({"x.run_s": 2.0})
        assert regression.baseline == 1.0


# ----------------------------------------------------------------------
class TestBenchCli:
    """End-to-end ``repro bench`` round trip, as CI drives it."""

    def _payload(self, tmp_path, seconds, speedup=6.0):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps({
            "load": {"columnar_s": seconds, "speedup": speedup},
            "records": 100000,
        }))
        return path

    def test_check_bootstraps_then_record_then_gate(self, tmp_path,
                                                    capsys):
        ledger = tmp_path / "ledger.jsonl"
        payload = self._payload(tmp_path, 1.0)
        # First check: no history, bootstrap pass.
        assert main(["bench", "check", str(payload),
                     "--ledger", str(ledger)]) == 0
        assert "0 recorded run(s) — ok" in capsys.readouterr().out
        # Record a few good runs.
        for run in range(3):
            assert main(["bench", "record", str(payload),
                         "--ledger", str(ledger),
                         "--run-id", f"run-{run}"]) == 0
        capsys.readouterr()
        # An unchanged payload passes against its own history.
        assert main(["bench", "check", str(payload),
                     "--ledger", str(ledger)]) == 0
        capsys.readouterr()
        # A 30% slowdown fails, naming metric and baseline on stderr.
        worse = self._payload(tmp_path, 1.3, speedup=4.0)
        assert main(["bench", "check", str(worse),
                     "--ledger", str(ledger)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION demo.load.columnar_s: 1.3" in captured.err
        assert "baseline 1" in captured.err
        assert "REGRESSION demo.load.speedup" in captured.err
        assert "FAIL" in captured.out

    def test_check_json_output(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        payload = self._payload(tmp_path, 1.0)
        main(["bench", "record", str(payload), "--ledger", str(ledger)])
        capsys.readouterr()
        worse = self._payload(tmp_path, 2.0)
        assert main(["bench", "check", str(worse), "--ledger",
                     str(ledger), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["gated_metrics"] == ["demo.load.columnar_s",
                                           "demo.load.speedup"]
        (regression,) = report["regressions"]
        assert regression["metric"] == "demo.load.columnar_s"
        assert regression["baseline"] == 1.0

    def test_custom_window_and_allowance(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        main(["bench", "record", str(self._payload(tmp_path, 1.0)),
              "--ledger", str(ledger)])
        capsys.readouterr()
        mildly_worse = self._payload(tmp_path, 1.1)
        assert main(["bench", "check", str(mildly_worse),
                     "--ledger", str(ledger), "--allowance", "0.05"]) == 1
        capsys.readouterr()
        assert main(["bench", "check", str(mildly_worse),
                     "--ledger", str(ledger), "--allowance", "0.5"]) == 0

    def test_show_renders_history_table(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        assert main(["bench", "show", "--ledger", str(ledger)]) == 0
        assert "no recorded runs" in capsys.readouterr().out
        main(["bench", "record", str(self._payload(tmp_path, 1.0)),
              "--ledger", str(ledger), "--run-id", "ci-17"])
        capsys.readouterr()
        assert main(["bench", "show", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "demo.load.columnar_s" in out
        assert "ci-17" in out

    def test_record_without_files_is_an_error(self, tmp_path, capsys):
        assert main(["bench", "record",
                     "--ledger", str(tmp_path / "l.jsonl")]) != 0
        assert "at least one" in capsys.readouterr().err

    def test_wrapper_script_delegates(self, tmp_path, capsys):
        import importlib.util
        from pathlib import Path

        script = Path(__file__).parent.parent / "tools" / "bench_ledger.py"
        spec = importlib.util.spec_from_file_location("bench_ledger_tool",
                                                      script)
        wrapper = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(wrapper)
        ledger = tmp_path / "ledger.jsonl"
        payload = self._payload(tmp_path, 1.0)
        assert wrapper.main(["record", str(payload),
                             "--ledger", str(ledger)]) == 0
        assert ledger.exists()
