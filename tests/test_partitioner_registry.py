"""Tests for the partitioner registry and cross-algorithm invariants."""

import random

import pytest

from repro.benchmarks import qft_circuit, tlim_circuit
from repro.circuits.circuit import QuantumCircuit
from repro.partitioning import (
    InteractionGraph,
    Partition,
    Partitioner,
    PrecomputedPartitioner,
    distribute_circuit,
    get_partitioner,
    list_partitioners,
    register_partitioner,
)
from repro.partitioning.registry import PARTITIONERS
from repro.exceptions import PartitionError

ALGORITHMS = ("multilevel", "kernighan_lin", "fiduccia_mattheyses", "spectral")


def _benchmark_graph(num_qubits=16):
    return InteractionGraph.from_circuit(qft_circuit(num_qubits))


class TestRegistry:
    def test_builtins_listed(self):
        assert list_partitioners() == [
            "multilevel", "kernighan_lin", "fiduccia_mattheyses",
            "spectral", "contiguous", "precomputed",
        ]

    def test_aliases_resolve_to_canonical(self):
        assert get_partitioner("kl") is get_partitioner("kernighan_lin")
        assert get_partitioner("fm") is get_partitioner("fiduccia_mattheyses")
        assert get_partitioner("KL").name == "kernighan_lin"

    def test_instance_passthrough(self):
        partitioner = get_partitioner("spectral")
        assert get_partitioner(partitioner) is partitioner

    def test_unknown_name_lists_registry(self):
        with pytest.raises(PartitionError, match="registered:"):
            get_partitioner("metis")

    def test_register_custom_and_duplicate_rejected(self):
        class Halves(Partitioner):
            name = "test-halves"

            def partition(self, graph, num_blocks=2, seed=0):
                self._require_bisection(num_blocks)
                return Partition.contiguous(graph.num_vertices, 2)

        try:
            register_partitioner(Halves())
            graph = _benchmark_graph()
            assert get_partitioner("test-halves")(graph).num_blocks == 2
            with pytest.raises(PartitionError, match="already registered"):
                register_partitioner(Halves())
        finally:
            PARTITIONERS.pop("test-halves", None)

    def test_bisection_only_algorithms_reject_k_way(self):
        graph = _benchmark_graph()
        for name in ("kernighan_lin", "fiduccia_mattheyses", "spectral"):
            with pytest.raises(PartitionError, match="only supports bisection"):
                get_partitioner(name).partition(graph, num_blocks=4)


class TestPrecomputed:
    def test_registry_entry_carries_no_partition(self):
        graph = _benchmark_graph()
        with pytest.raises(PartitionError, match="carries no partition"):
            get_partitioner("precomputed").partition(graph)

    def test_passthrough_returns_partition_unchanged(self):
        graph = _benchmark_graph()
        explicit = Partition.contiguous(16, 2)
        result = PrecomputedPartitioner(explicit).partition(graph)
        assert result is explicit

    def test_mismatched_partition_rejected(self):
        graph = _benchmark_graph()
        with pytest.raises(PartitionError, match="vertices"):
            PrecomputedPartitioner(Partition.contiguous(8, 2)).partition(graph)
        with pytest.raises(PartitionError, match="blocks"):
            PrecomputedPartitioner(
                Partition.contiguous(16, 4)).partition(graph, num_blocks=2)

    def test_distribute_circuit_with_explicit_partition(self):
        circuit = tlim_circuit(16, num_steps=2)
        explicit = Partition.contiguous(16, 2)
        program = distribute_circuit(circuit, partition=explicit)
        assert program.partition == explicit

    def test_distribute_circuit_with_partitioner_instance(self):
        circuit = tlim_circuit(16, num_steps=2)
        program = distribute_circuit(
            circuit, method=PrecomputedPartitioner(Partition.contiguous(16, 2)))
        assert program.partition.method == "contiguous"


class TestAlgorithmInvariants:
    """Shared invariants of the four real algorithms (ISSUE satellite)."""

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_valid_balanced_bisection(self, name):
        graph = _benchmark_graph(16)
        partition = get_partitioner(name).partition(graph, seed=3)
        assert partition.num_blocks == 2
        assert partition.num_vertices == 16
        # All algorithms bound the imbalance: exact halves for KL/spectral,
        # a 10% tolerance for FM/multilevel refinement.
        assert max(partition.block_sizes()) <= int(1.1 * 8) + 1

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_deterministic_per_seed(self, name):
        graph = _benchmark_graph(12)
        first = get_partitioner(name).partition(graph, seed=7)
        second = get_partitioner(name).partition(graph, seed=7)
        assert first.assignment == second.assignment

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_cut_no_worse_than_random_balanced_partition(self, name):
        graph = _benchmark_graph(16)
        rng = random.Random(123)
        vertices = list(range(16))
        rng.shuffle(vertices)
        random_cut = Partition.from_blocks(
            [sorted(vertices[:8]), sorted(vertices[8:])]).cut_weight(graph)
        cut = get_partitioner(name).partition(graph, seed=0).cut_weight(graph)
        assert cut <= random_cut + 1e-9

    @pytest.mark.parametrize("num_nodes", [2, 3, 4])
    def test_multilevel_k_way_distributes_exactly(self, num_nodes):
        circuit = qft_circuit(12)
        program = distribute_circuit(circuit, num_nodes=num_nodes)
        assert program.num_nodes == num_nodes
        assert sorted(program.partition.block_sizes()) == sorted(
            [12 // num_nodes + (1 if i < 12 % num_nodes else 0)
             for i in range(num_nodes)])

    def test_partitioners_yield_distinct_strategies(self):
        # Sanity: the axis is worth sweeping — at least two registered
        # algorithms disagree on some graph.
        circuit = qft_circuit(10)
        programs = {
            name: distribute_circuit(circuit, method=name, seed=0)
            for name in ALGORITHMS
        }
        assignments = {tuple(sorted(p.partition.assignment.items()))
                       for p in programs.values()}
        assert len(assignments) >= 2


class TestCacheTokens:
    def test_stateless_token_is_name(self):
        assert get_partitioner("multilevel").cache_token() == "multilevel"

    def test_precomputed_tokens_distinguish_partitions(self):
        a = PrecomputedPartitioner(Partition.contiguous(8, 2))
        b = PrecomputedPartitioner(
            Partition.from_blocks([[0, 2, 4, 6], [1, 3, 5, 7]]))
        assert a.cache_token() != b.cache_token()

    def test_shared_cache_keeps_precomputed_partitions_apart(self):
        from repro.benchmarks import build_benchmark
        from repro.core.config import SystemConfig
        from repro.engine import ArtifactCache, CellCompiler

        circuit = build_benchmark("TLIM-16")
        even = Partition.contiguous(16, 2)
        odd = Partition.from_blocks([sorted(range(0, 16, 2)),
                                     sorted(range(1, 16, 2))])
        cache = ArtifactCache()
        system = SystemConfig(data_qubits_per_node=8,
                              comm_qubits_per_node=4,
                              buffer_qubits_per_node=4)
        first = CellCompiler(system=system, cache=cache,
                             partition_method=PrecomputedPartitioner(even))
        second = CellCompiler(system=system, cache=cache,
                              partition_method=PrecomputedPartitioner(odd))
        assert first.resolve_program(circuit).partition == even
        assert second.resolve_program(circuit).partition == odd


class TestKWayCapabilityValidation:
    def test_bisection_method_rejected_on_multi_node_system(self):
        from repro.core.config import SystemConfig
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="only supports bisection"):
            SystemConfig(num_nodes=4, partition_method="spectral")

    def test_bisection_axis_value_rejected_on_multi_node_study(self):
        from repro.core.config import SystemConfig
        from repro.study import Study
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="only supports bisection"):
            Study(benchmarks="TLIM-32", num_runs=1,
                  system=SystemConfig(num_nodes=4),
                  axes={"partition_method": ["multilevel", "spectral"]})
