"""Tests for the communication/buffer qubit sweep (Fig. 7 machinery)."""

import pytest

from repro.analysis import sweep_report
from repro.core import SystemConfig, run_comm_qubit_sweep, run_design_comparison
from repro.engine import ArtifactCache, ProcessPoolBackend
from repro.exceptions import ConfigurationError

SWEEP_SYSTEM = SystemConfig(
    data_qubits_per_node=16, comm_qubits_per_node=4, buffer_qubits_per_node=4
)


@pytest.fixture(scope="module")
def small_sweep():
    return run_comm_qubit_sweep(
        "TLIM-32", [4, 8], designs=["async_buf", "adapt_buf", "ideal"],
        num_runs=2, base_system=SWEEP_SYSTEM, base_seed=3,
    )


class TestCommQubitSweep:
    def test_sweep_shape(self, small_sweep):
        assert sorted(small_sweep) == [4, 8]
        for comparison in small_sweep.values():
            assert comparison.benchmark == "TLIM-32"
            assert set(comparison.designs) == {"async_buf", "adapt_buf", "ideal"}
            assert comparison.design("adapt_buf").num_runs == 2

    def test_more_comm_qubits_do_not_hurt(self, small_sweep):
        for design in ("async_buf", "adapt_buf"):
            fewer = small_sweep[4].depth_table()[design]
            more = small_sweep[8].depth_table()[design]
            assert more <= fewer + 1e-9

    def test_ideal_unaffected_by_comm_count(self, small_sweep):
        assert small_sweep[4].depth_table()["ideal"] == pytest.approx(
            small_sweep[8].depth_table()["ideal"]
        )

    def test_empty_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            run_comm_qubit_sweep("TLIM-32", [])

    def test_sweep_reuses_partitioned_program(self):
        cache = ArtifactCache()
        run_comm_qubit_sweep(
            "TLIM-32", [4, 8], designs=["adapt_buf"], num_runs=1,
            base_system=SWEEP_SYSTEM, cache=cache,
        )
        # One partition for the whole sweep, one lookup-bearing cell per step.
        assert cache.count("program") == 1
        assert cache.count("cell") == 2

    def test_sweep_deterministic_across_backends(self):
        kwargs = dict(designs=["adapt_buf"], num_runs=2,
                      base_system=SWEEP_SYSTEM, base_seed=11)
        serial = run_comm_qubit_sweep("TLIM-32", [4, 8], **kwargs)
        with ProcessPoolBackend(max_workers=2) as backend:
            parallel = run_comm_qubit_sweep("TLIM-32", [4, 8],
                                            backend=backend, **kwargs)
        for count in (4, 8):
            serial_summary = serial[count].design("adapt_buf")
            parallel_summary = parallel[count].design("adapt_buf")
            assert serial_summary.depth.mean == parallel_summary.depth.mean
            assert serial_summary.fidelity.mean == parallel_summary.fidelity.mean

    def test_design_comparison_accepts_shared_cache(self):
        cache = ArtifactCache()
        first = run_design_comparison(
            ["TLIM-32"], designs=["adapt_buf"], num_runs=1,
            system=SWEEP_SYSTEM, cache=cache,
        )
        misses_after_first = cache.misses
        second = run_design_comparison(
            ["TLIM-32"], designs=["adapt_buf"], num_runs=1,
            system=SWEEP_SYSTEM, cache=cache,
        )
        assert cache.misses == misses_after_first  # fully served from cache
        a = first["TLIM-32"].design("adapt_buf")
        b = second["TLIM-32"].design("adapt_buf")
        assert a.depth.mean == b.depth.mean


class TestSweepReport:
    def test_report_contains_counts_and_designs(self, small_sweep):
        text = sweep_report(small_sweep, "depth")
        assert "TLIM-32" in text
        assert "4/4" in text and "8/8" in text
        assert "adapt_buf" in text

    def test_fidelity_metric(self, small_sweep):
        text = sweep_report(small_sweep, "fidelity")
        assert "fidelity" in text

    def test_unknown_metric_rejected(self, small_sweep):
        with pytest.raises(ValueError):
            sweep_report(small_sweep, "volume")

    def test_empty_sweep(self):
        assert sweep_report({}) == "(no results)"
