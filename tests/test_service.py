"""End-to-end tests for the study service (daemon, HTTP API, recovery).

The contract under test is the PR's acceptance criterion: a job running
under the daemon survives cancellation, daemon restarts, and a hard
``kill -9``, and in every case the results finally served are **byte
identical** (``to_json``) to the same study run uninterrupted in the
foreground.  Around that sit the API-surface tests: structured 400s for
bad specs, 429 quota rejection, 409 before completion, and the progress
wire format's schema pin.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError, SpecValidationError, StoreError
from repro.service import (
    JobJournal,
    JobRegistry,
    JobState,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    StudyDaemon,
)
from repro.service.jobqueue import JobQueue
from repro.service.jobs import Job
from repro.study.store import ProgressEvent, RunStore
from repro.study.study import Study

ROOT = Path(__file__).resolve().parents[1]

SMALL_SYSTEM = {"data_qubits_per_node": 16, "comm_qubits_per_node": 4,
                "buffer_qubits_per_node": 4}


def small_spec(**overrides):
    """A spec that finishes in well under a second (6 tasks)."""
    spec = {"benchmarks": ["TLIM-32"], "designs": ["ideal", "original"],
            "num_runs": 3, "system": dict(SMALL_SYSTEM)}
    spec.update(overrides)
    return spec


def slow_spec():
    """A spec with enough chunk-1 tasks to interrupt mid-run reliably."""
    return {"benchmarks": ["TLIM-32", "QAOA-r4-16"],
            "designs": ["ideal", "original"],
            "num_runs": 32, "system": dict(SMALL_SYSTEM)}


def foreground_json(spec):
    """The uninterrupted in-memory run the service must reproduce."""
    with Study.from_spec(spec) as study:
        return study.run().to_json()


@pytest.fixture(scope="module")
def slow_baseline():
    return foreground_json(slow_spec())


@pytest.fixture
def daemon(tmp_path):
    instance = StudyDaemon(ServiceConfig(
        data_root=tmp_path / "svc", port=0, store_chunk_size=1))
    instance.start()
    yield instance
    instance.stop(timeout=5)


@pytest.fixture
def client(daemon):
    return ServiceClient(daemon.address, client="tester")


@pytest.fixture
def idle_daemon(tmp_path, monkeypatch):
    """A daemon whose scheduler never starts: jobs stay queued forever,
    which makes the queued-state API behaviour deterministic."""
    instance = StudyDaemon(ServiceConfig(
        data_root=tmp_path / "svc", port=0, max_jobs_per_client=2))
    monkeypatch.setattr(instance.scheduler, "start", lambda: None)
    instance.start()
    yield instance
    instance.stop(timeout=1)


@pytest.fixture
def idle_client(idle_daemon):
    return ServiceClient(idle_daemon.address, client="tester")


def poll_until(condition, timeout=60.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = condition()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


# ----------------------------------------------------------------------
# satellite: the progress wire format is pinned and round-trips
# ----------------------------------------------------------------------
class TestProgressEventWireFormat:
    EVENT = ProgressEvent(done_chunks=3, total_chunks=12, done_tasks=6,
                          total_tasks=24, resumed_chunks=1, resumed_tasks=2,
                          elapsed=1.2345678)

    def test_schema_is_pinned(self):
        # The service status endpoint serves exactly these keys; renaming
        # or dropping one breaks deployed pollers.  Extend, don't mutate.
        assert set(self.EVENT.to_dict()) == {
            "event", "done_chunks", "total_chunks", "done_tasks",
            "total_tasks", "resumed_chunks", "resumed_tasks", "elapsed",
            "runs_per_second", "complete",
        }
        assert self.EVENT.to_dict()["event"] == "progress"

    def test_round_trip(self):
        rebuilt = ProgressEvent.from_dict(self.EVENT.to_dict())
        assert rebuilt.done_chunks == self.EVENT.done_chunks
        assert rebuilt.total_chunks == self.EVENT.total_chunks
        assert rebuilt.done_tasks == self.EVENT.done_tasks
        assert rebuilt.total_tasks == self.EVENT.total_tasks
        assert rebuilt.resumed_chunks == self.EVENT.resumed_chunks
        assert rebuilt.resumed_tasks == self.EVENT.resumed_tasks
        assert rebuilt.elapsed == pytest.approx(self.EVENT.elapsed, abs=1e-3)
        # Derived fields are recomputed, not trusted from the payload.
        assert rebuilt.complete is False
        assert rebuilt.executed_tasks == 4

    def test_round_trip_survives_json(self):
        payload = json.loads(json.dumps(self.EVENT.to_dict()))
        assert ProgressEvent.from_dict(payload).done_tasks == 6

    def test_bad_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="progress-event"):
            ProgressEvent.from_dict({"done_chunks": 1})


# ----------------------------------------------------------------------
# satellite: lock contention names the holder
# ----------------------------------------------------------------------
class TestLockContentionDiagnosis:
    def test_error_names_pid_path_and_status_hint(self, tmp_path):
        store_dir = tmp_path / "st"
        cells = [{"benchmark": "TLIM-32", "design": "ideal", "num_seeds": 2}]
        holder = RunStore(store_dir)
        holder.begin("f" * 64, {}, cells)
        try:
            contender = RunStore(store_dir)
            with pytest.raises(StoreError) as excinfo:
                contender.begin("f" * 64, {}, cells)
            message = str(excinfo.value)
            assert f"held by PID {os.getpid()}" in message
            assert str(store_dir) in message
            assert f"repro status --store {store_dir}" in message
        finally:
            holder.release()

    def test_lock_released_after_run(self, tmp_path):
        store_dir = tmp_path / "st"
        with Study.from_spec(small_spec()) as study:
            study.run(store=store_dir)
        # A released lock means the next begin() succeeds immediately.
        reopened = RunStore(store_dir)
        reopened.begin(json.loads((store_dir / "manifest.json").read_text())
                       ["fingerprint"], {}, [])
        reopened.release()


# ----------------------------------------------------------------------
# the job state machine and journal recovery (unit level)
# ----------------------------------------------------------------------
def make_job(index=0, state=JobState.QUEUED, client="tester", priority=0):
    return Job(id=f"job-{index + 1:06d}", spec=small_spec(), client=client,
               priority=priority, state=state, created=0.0,
               submit_index=index, store="stores/abc", fingerprint="f" * 64,
               cells=2, total_tasks=6)


class TestJobRegistry:
    def test_illegal_transitions_rejected(self, tmp_path):
        registry = JobRegistry(JobJournal(tmp_path / "j"))
        registry.load()
        registry.add(make_job())
        assert not registry.try_transition("job-000001", JobState.DONE)
        assert registry.try_transition("job-000001", JobState.RUNNING)
        assert registry.try_transition("job-000001", JobState.DONE)
        # Terminal states are sticky.
        assert not registry.try_transition("job-000001", JobState.QUEUED)

    def test_cancel_vs_start_race_is_atomic(self, tmp_path):
        registry = JobRegistry(JobJournal(tmp_path / "j"))
        registry.load()
        registry.add(make_job())
        assert registry.try_transition("job-000001", JobState.CANCELLED)
        # The worker that pops the id afterwards loses the claim.
        assert not registry.try_transition("job-000001", JobState.RUNNING)

    def test_restart_requeues_running_jobs(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        registry = JobRegistry(journal)
        registry.load()
        registry.add(make_job(0))
        registry.add(make_job(1))
        registry.try_transition("job-000001", JobState.RUNNING)
        registry.try_transition("job-000002", JobState.RUNNING)
        registry.try_transition("job-000002", JobState.DONE)
        journal.close()

        revived = JobRegistry(JobJournal(tmp_path / "j"))
        pending = revived.load()
        assert [job.id for job in pending] == ["job-000001"]
        assert pending[0].state is JobState.QUEUED
        assert pending[0].requeues == 1
        assert revived.get("job-000002").state is JobState.DONE
        assert revived.next_index() == 2

    def test_torn_journal_tail_is_discarded(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        registry = JobRegistry(journal)
        registry.load()
        registry.add(make_job())
        journal.close()
        with open(tmp_path / "j", "ab") as handle:
            handle.write(b'{"event": "state", "id": "job-0')  # no newline

        revived = JobRegistry(JobJournal(tmp_path / "j"))
        pending = revived.load()
        assert [job.id for job in pending] == ["job-000001"]
        assert pending[0].state is JobState.QUEUED

    def test_active_count_is_queued_plus_running(self, tmp_path):
        registry = JobRegistry(JobJournal(tmp_path / "j"))
        registry.load()
        registry.add(make_job(0))
        registry.add(make_job(1))
        registry.add(make_job(2, client="other"))
        registry.try_transition("job-000001", JobState.RUNNING)
        assert registry.active_count("tester") == 2
        registry.try_transition("job-000001", JobState.DONE)
        assert registry.active_count("tester") == 1
        assert registry.active_count("other") == 1


class TestJobQueue:
    def test_priority_then_submission_order(self):
        queue = JobQueue()
        queue.push(make_job(0, priority=0))
        queue.push(make_job(1, priority=5))
        queue.push(make_job(2, priority=0))
        assert queue.pop(timeout=1) == "job-000002"  # highest priority
        assert queue.pop(timeout=1) == "job-000001"  # then FIFO
        assert queue.pop(timeout=1) == "job-000003"

    def test_closed_queue_unblocks_pop(self):
        queue = JobQueue()
        queue.close()
        assert queue.pop(timeout=5) is None


# ----------------------------------------------------------------------
# HTTP API surface (live in-process daemon)
# ----------------------------------------------------------------------
class TestSubmitPollFetch:
    def test_lifecycle_json_and_csv(self, client):
        spec = small_spec()
        job = client.submit(spec)
        assert job["id"].startswith("job-")
        assert job["total_tasks"] == 6
        status = client.wait(job["id"], timeout=60)
        assert status["state"] == "done"
        assert status["progress"]["latest"]["complete"] is True
        assert status["resume_point"]["done_chunks"] == 6

        fetched = client.results(job["id"], "json")
        assert fetched == foreground_json(spec)
        csv_text = client.results(job["id"], "csv")
        assert csv_text.splitlines()[0].startswith("benchmark,")
        assert len(csv_text.splitlines()) == 7  # header + 6 runs

    def test_health_and_listing(self, client):
        job = client.submit(small_spec())
        client.wait(job["id"], timeout=60)
        health = client.health()
        assert health["status"] == "ok"
        assert health["jobs"]["done"] == 1
        listing = client.jobs()
        assert [row["id"] for row in listing["jobs"]] == [job["id"]]
        assert "spec" not in listing["jobs"][0]
        assert listing["quota"] == {"client": "tester", "active": 0,
                                    "limit": 16}

    def test_repeat_submission_resumes_from_shared_store(self, client):
        spec = small_spec()
        first = client.submit(spec)
        client.wait(first["id"], timeout=60)
        again = client.submit(spec)
        status = client.wait(again["id"], timeout=60)
        assert status["state"] == "done"
        # Same plan → same store → zero new work, all chunks resumed.
        assert status["progress"]["latest"]["resumed_chunks"] == 6
        assert client.results(again["id"]) == client.results(first["id"])


class TestApiErrors:
    def test_malformed_spec_is_structured_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit(small_spec(bogus=1))
        assert excinfo.value.status == 400
        payload = excinfo.value.payload
        assert payload["error"] == "invalid-spec"
        assert payload["field"] == "bogus"
        assert "benchmarks" in payload["allowed"]

    def test_bad_design_reports_allowed_values(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit(small_spec(designs=["no-such-design"]))
        assert excinfo.value.status == 400
        assert excinfo.value.payload["field"] == "designs"
        assert "ideal" in excinfo.value.payload["allowed"]

    def test_non_object_body_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/jobs", body=None,
                            headers={"Content-Type": "application/json"})
        assert excinfo.value.status == 400

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404
        assert excinfo.value.payload["error"] == "unknown-job"

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_bad_results_format_400(self, client):
        job = client.submit(small_spec())
        client.wait(job["id"], timeout=60)
        with pytest.raises(ServiceError) as excinfo:
            client.results(job["id"], "xml")
        assert excinfo.value.status == 400

    def test_bad_state_filter_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.jobs(state="bogus")
        assert excinfo.value.status == 400


class TestQueuedJobs:
    def test_results_before_done_409(self, idle_client):
        job = idle_client.submit(small_spec())
        with pytest.raises(ServiceError) as excinfo:
            idle_client.results(job["id"])
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error"] == "job-not-ready"
        assert excinfo.value.payload["state"] == "queued"

    def test_cancel_queued_job_is_immediate(self, idle_client):
        job = idle_client.submit(small_spec())
        assert idle_client.cancel(job["id"])["state"] == "cancelled"
        assert idle_client.job(job["id"])["state"] == "cancelled"

    def test_quota_rejection_and_release(self, idle_client):
        first = idle_client.submit(small_spec())
        idle_client.submit(small_spec(num_runs=4))
        with pytest.raises(ServiceError) as excinfo:
            idle_client.submit(small_spec(num_runs=5))
        assert excinfo.value.status == 429
        payload = excinfo.value.payload
        assert payload["error"] == "quota-exceeded"
        assert payload["active"] == payload["limit"] == 2
        # Another tenant is unaffected; cancelling frees the caller's slot.
        other = ServiceClient(idle_client.url, client="other")
        other.submit(small_spec(num_runs=6))
        idle_client.cancel(first["id"])
        idle_client.submit(small_spec(num_runs=5))


# ----------------------------------------------------------------------
# cancellation mid-sweep, then resubmit resumes
# ----------------------------------------------------------------------
class TestCancelAndResume:
    def test_cancel_mid_run_then_resubmit_resumes(self, client,
                                                  slow_baseline):
        spec = slow_spec()
        job = client.submit(spec)

        def mid_run():
            latest = client.job(job["id"])["progress"]["latest"]
            return latest if latest and latest["done_chunks"] >= 2 else None

        poll_until(mid_run)
        client.cancel(job["id"])
        status = client.wait(job["id"], timeout=60)
        assert status["state"] == "cancelled"
        resume = status["resume_point"]
        assert 0 < resume["done_chunks"] < resume["total_chunks"]
        with pytest.raises(ServiceError) as excinfo:
            client.results(job["id"])
        assert excinfo.value.status == 409

        # Resubmitting the identical spec lands on the same store and
        # resumes from the committed chunks rather than starting over.
        retry = client.submit(spec)
        status = client.wait(retry["id"], timeout=120)
        assert status["state"] == "done"
        assert status["progress"]["latest"]["resumed_chunks"] >= 2
        assert client.results(retry["id"]) == slow_baseline


# ----------------------------------------------------------------------
# the acceptance criterion: kill -9 the daemon, restart, byte-identical
# ----------------------------------------------------------------------
def read_line_with_deadline(stream, timeout=60.0):
    box = []
    reader = threading.Thread(target=lambda: box.append(stream.readline()),
                              daemon=True)
    reader.start()
    reader.join(timeout)
    assert box and box[0], "daemon never announced its address"
    return box[0]


class TestKillDashNineRecovery:
    def test_killed_daemon_restart_finishes_byte_identical(
            self, tmp_path, slow_baseline):
        data_root = tmp_path / "svc"
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(ROOT / "src") + os.pathsep
                             + env.get("PYTHONPATH", ""))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--data-root", str(data_root), "--port", "0",
             "--store-chunk-size", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            banner = read_line_with_deadline(process.stdout)
            assert "repro service listening on " in banner
            url = banner.split()[4]
            client = ServiceClient(url, client="tester", timeout=10)
            job = client.submit(slow_spec())

            def mid_run():
                latest = client.job(job["id"])["progress"]["latest"]
                return latest if latest and latest["done_chunks"] >= 2 else None

            interrupted_at = poll_until(mid_run)
            assert not interrupted_at["complete"]
        finally:
            process.kill()  # SIGKILL: no cleanup, no cooperative anything
            process.wait(timeout=30)

        # A fresh daemon on the same data root replays the journal, finds
        # the job that was running when the process died, re-queues it,
        # and the run store resumes it chunk-exactly.
        revived = StudyDaemon(ServiceConfig(
            data_root=data_root, port=0, store_chunk_size=1))
        revived.start()
        try:
            client = ServiceClient(revived.address, client="tester")
            status = client.wait(job["id"], timeout=120)
            assert status["state"] == "done"
            assert status["requeues"] >= 1
            assert status["progress"]["latest"]["resumed_chunks"] >= 2
            assert client.results(job["id"]) == slow_baseline
        finally:
            revived.stop(timeout=5)


# ----------------------------------------------------------------------
# graceful shutdown re-queues (in-process restart)
# ----------------------------------------------------------------------
class TestGracefulRestart:
    def test_stop_and_restart_same_data_root(self, tmp_path):
        data_root = tmp_path / "svc"
        spec = small_spec()
        first = StudyDaemon(ServiceConfig(data_root=data_root, port=0,
                                          store_chunk_size=1))
        first.start()
        try:
            job = ServiceClient(first.address, client="tester").submit(spec)
        finally:
            first.stop(timeout=30)

        second = StudyDaemon(ServiceConfig(data_root=data_root, port=0,
                                           store_chunk_size=1))
        second.start()
        try:
            client = ServiceClient(second.address, client="tester")
            status = client.wait(job["id"], timeout=60)
            assert status["state"] == "done"
            assert client.results(job["id"]) == foreground_json(spec)
        finally:
            second.stop(timeout=5)


# ----------------------------------------------------------------------
# satellite: /healthz as the operator's one-glance view
# ----------------------------------------------------------------------
class TestHealthzOperatorView:
    def test_health_reports_queue_and_state_counts(self, client):
        health = client.health()
        assert health["queue_depth"] == 0
        assert health["running"] == 0
        assert health["done"] == 0
        assert "fleet_workers" not in health  # no fleet configured
        job = client.submit(small_spec())
        client.wait(job["id"], timeout=60)
        health = client.health()
        assert health["done"] == 1
        assert health["jobs"]["done"] == 1

    def test_queued_jobs_show_in_queue_depth(self, idle_client):
        idle_client.submit(small_spec())
        idle_client.submit(small_spec(num_runs=2))
        health = idle_client.health()
        assert health["queue_depth"] == 2
        assert health["jobs"]["queued"] == 2

    def test_jobs_cli_header_line(self, client, capsys):
        from repro.study.cli import main as cli_main

        job = client.submit(small_spec())
        client.wait(job["id"], timeout=60)
        assert cli_main(["jobs", "--url", client.url]) == 0
        out = capsys.readouterr().out
        assert "service: 0 queued, 0 running, 1 done" in out.splitlines()[0]


# ----------------------------------------------------------------------
# tentpole glue: the daemon running every job on a worker fleet
# ----------------------------------------------------------------------
class TestFleetService:
    def test_fleet_requires_single_scheduler_worker(self, tmp_path):
        with pytest.raises(ConfigurationError, match="concurrency 1"):
            StudyDaemon(ServiceConfig(data_root=tmp_path / "svc", port=0,
                                      fleet="127.0.0.1:0", concurrency=2))

    def test_fleet_daemon_serves_jobs_and_counts_workers(self, tmp_path):
        from repro.engine.cache import ArtifactCache
        from repro.fleet import FleetWorker

        daemon = StudyDaemon(ServiceConfig(
            data_root=tmp_path / "svc", port=0, store_chunk_size=1,
            fleet="127.0.0.1:0"))
        daemon.start()
        worker = None
        worker_thread = None
        try:
            client = ServiceClient(daemon.address, client="tester")
            # The scheduler binds the coordinator eagerly, before any job.
            backend = poll_until(
                lambda: next(iter(daemon.scheduler._backends), None))
            assert client.health()["fleet_workers"] == 0
            worker = FleetWorker(backend.address, name="svc-w0", quiet=True,
                                 cache=ArtifactCache())
            worker_thread = threading.Thread(target=worker.run, daemon=True)
            worker_thread.start()
            poll_until(
                lambda: client.health()["fleet_workers"] == 1, timeout=30)
            spec = small_spec()
            job = client.submit(spec)
            status = client.wait(job["id"], timeout=120)
            assert status["state"] == "done"
            assert client.results(job["id"]) == foreground_json(spec)
        finally:
            if worker is not None:
                worker.stop()
            daemon.stop(timeout=10)
            if worker_thread is not None:
                worker_thread.join(timeout=10)


# ----------------------------------------------------------------------
# satellite: job TTL and store garbage collection
# ----------------------------------------------------------------------
class TestJobTTLPrune:
    def test_prune_without_ttl_rejected(self, daemon):
        with pytest.raises(ConfigurationError, match="TTL"):
            daemon.prune()

    def test_prune_spares_active_jobs(self, idle_daemon):
        ServiceClient(idle_daemon.address, client="tester").submit(
            small_spec())
        report = idle_daemon.prune(ttl=0)
        assert report == {"pruned": [], "stores_removed": []}

    def test_prune_removes_job_dir_store_and_journal_entry(self, daemon):
        client = ServiceClient(daemon.address, client="tester")
        job = client.submit(small_spec())
        done = client.wait(job["id"], timeout=60)
        store_dir = daemon.data_root / done["store"]
        job_dir = daemon.data_root / "jobs" / job["id"]
        assert store_dir.is_dir() and job_dir.is_dir()

        report = daemon.prune(ttl=0)
        assert report["pruned"] == [job["id"]]
        assert report["stores_removed"] == [done["store"]]
        assert not job_dir.exists()
        assert not store_dir.exists()
        with pytest.raises(ServiceError):
            client.job(job["id"])
        events = [json.loads(line)["event"]
                  for line in (daemon.data_root / "jobs.journal")
                  .read_text().splitlines()]
        assert "prune" in events

    def test_prune_survives_restart(self, tmp_path):
        data_root = tmp_path / "svc"
        daemon = StudyDaemon(ServiceConfig(data_root=data_root, port=0,
                                           store_chunk_size=1))
        daemon.start()
        try:
            client = ServiceClient(daemon.address, client="tester")
            job = client.submit(small_spec())
            client.wait(job["id"], timeout=60)
            daemon.prune(ttl=0)
        finally:
            daemon.stop(timeout=5)
        # The journal replay must forget the pruned job too.
        reborn = StudyDaemon(ServiceConfig(data_root=data_root, port=0,
                                           store_chunk_size=1))
        reborn.start()
        try:
            listing = ServiceClient(reborn.address, client="tester").jobs()
            assert listing["jobs"] == []
        finally:
            reborn.stop(timeout=5)

    def test_pruned_spec_resubmits_fresh_and_recomputes(self, daemon):
        client = ServiceClient(daemon.address, client="tester")
        spec = small_spec()
        first = client.submit(spec)
        client.wait(first["id"], timeout=60)
        baseline = client.results(first["id"])
        daemon.prune(ttl=0)

        again = client.submit(spec)
        # Job ids are never recycled: the submit-index replay includes
        # pruned submissions.
        assert again["id"] != first["id"]
        status = client.wait(again["id"], timeout=60)
        assert status["state"] == "done"
        # The store was recomputed from scratch, not resumed.
        assert status["progress"]["latest"]["resumed_chunks"] == 0
        assert client.results(again["id"]) == baseline

    def test_shared_store_outlives_partial_prune(self, daemon):
        client = ServiceClient(daemon.address, client="tester")
        spec = small_spec()
        first = client.submit(spec)
        client.wait(first["id"], timeout=60)
        second = client.submit(spec)  # same fingerprint, same store
        done = client.wait(second["id"], timeout=60)
        store_dir = daemon.data_root / done["store"]
        # Age only the first job into the TTL window.
        daemon.registry.get(first["id"]).finished = time.time() - 3600
        report = daemon.prune(ttl=60)
        assert report["pruned"] == [first["id"]]
        assert report["stores_removed"] == []
        assert store_dir.is_dir()  # the younger job still references it

    def test_negative_ttl_config_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="negative"):
            StudyDaemon(ServiceConfig(data_root=tmp_path / "svc", port=0,
                                      job_ttl=-1))

    def test_gc_loop_runs_from_serve(self, tmp_path):
        daemon = StudyDaemon(ServiceConfig(
            data_root=tmp_path / "svc", port=0, store_chunk_size=1,
            job_ttl=0.0))
        daemon.start()
        try:
            assert daemon.health()["job_ttl"] == 0.0
            client = ServiceClient(daemon.address, client="tester")
            job = client.submit(small_spec())
            client.wait(job["id"], timeout=60)
            # The background loop wakes at >=1s intervals; don't wait for
            # it — call the same entry point it calls.
            daemon.prune()
            assert (ServiceClient(daemon.address, client="tester")
                    .jobs()["jobs"] == [])
        finally:
            daemon.stop(timeout=5)


# ----------------------------------------------------------------------
# requeue provenance: last_failure survives the journal and the listing
# ----------------------------------------------------------------------
class TestLastFailureProvenance:
    def test_restart_requeue_records_the_reason(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        registry = JobRegistry(journal)
        registry.load()
        registry.add(make_job())
        registry.try_transition("job-000001", JobState.RUNNING)
        journal.close()

        revived = JobRegistry(JobJournal(tmp_path / "j"))
        (job,) = revived.load()
        assert job.requeues == 1
        assert job.last_failure == "daemon restarted mid-run"

    def test_explicit_failure_reason_is_kept_and_journalled(self, tmp_path):
        registry = JobRegistry(JobJournal(tmp_path / "j"))
        registry.load()
        registry.add(make_job())
        registry.try_transition("job-000001", JobState.RUNNING)
        assert registry.try_transition(
            "job-000001", JobState.QUEUED, requeued=True,
            failure="daemon stopped mid-run")
        job = registry.get("job-000001")
        assert job.requeues == 1
        assert job.last_failure == "daemon stopped mid-run"
        assert job.error is None  # a requeue is not a failure verdict

        # The reason replays from the journal and rides the listing row
        # (GET /jobs and `repro jobs` render summary()).
        revived = JobRegistry(JobJournal(tmp_path / "j"))
        revived.load()
        row = revived.get("job-000001").summary()
        assert row["last_failure"] == "daemon stopped mid-run"
        assert row["requeues"] == 1
        assert "spec" not in row

    def test_terminal_failure_sets_both_error_and_last_failure(
            self, tmp_path):
        registry = JobRegistry(JobJournal(tmp_path / "j"))
        registry.load()
        registry.add(make_job())
        registry.try_transition("job-000001", JobState.RUNNING)
        registry.try_transition("job-000001", JobState.FAILED,
                                error="unknown benchmark 'TLIM-33'")
        job = registry.get("job-000001")
        assert job.error == "unknown benchmark 'TLIM-33'"
        assert job.last_failure == "unknown benchmark 'TLIM-33'"
