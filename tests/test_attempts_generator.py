"""Unit tests for attempt schedules and the stochastic EPR generator."""

import pytest

from repro.entanglement import (
    AttemptPolicy,
    AttemptSchedule,
    EntanglementGenerator,
)
from repro.exceptions import EntanglementError


class TestAttemptSchedule:
    def test_synchronous_all_pairs_aligned(self):
        schedule = AttemptSchedule(num_pairs=8, policy=AttemptPolicy.SYNCHRONOUS)
        assert {schedule.first_completion(i) for i in range(8)} == {10.0}
        assert schedule.effective_groups == 1

    def test_asynchronous_staggered_first_completions(self):
        schedule = AttemptSchedule(num_pairs=10, policy=AttemptPolicy.ASYNCHRONOUS,
                                   num_groups=10, stagger=1.0)
        completions = sorted(schedule.first_completion(i) for i in range(10))
        assert completions == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]

    def test_group_assignment_round_robin(self):
        schedule = AttemptSchedule(num_pairs=8, policy=AttemptPolicy.ASYNCHRONOUS,
                                   num_groups=4)
        assert schedule.group_of(0) == schedule.group_of(4)
        assert schedule.group_of(1) != schedule.group_of(2)

    def test_groups_capped_by_pairs(self):
        schedule = AttemptSchedule(num_pairs=3, policy=AttemptPolicy.ASYNCHRONOUS,
                                   num_groups=10)
        assert schedule.effective_groups == 3

    def test_completion_grid_period(self):
        schedule = AttemptSchedule(num_pairs=4, policy=AttemptPolicy.ASYNCHRONOUS)
        completions = [schedule.attempt_completion(2, k) for k in range(3)]
        assert completions[1] - completions[0] == pytest.approx(10.0)
        assert completions[2] - completions[1] == pytest.approx(10.0)

    def test_non_steady_state_first_cycle(self):
        schedule = AttemptSchedule(num_pairs=4, policy=AttemptPolicy.ASYNCHRONOUS,
                                   steady_state=False)
        assert min(schedule.first_completion(i) for i in range(4)) >= 10.0

    def test_index_completing_after(self):
        schedule = AttemptSchedule(num_pairs=2, policy=AttemptPolicy.SYNCHRONOUS)
        assert schedule.attempt_index_completing_after(0, 0.0) == 0
        assert schedule.attempt_index_completing_after(0, 10.0) == 1
        assert schedule.attempt_index_completing_after(0, 15.0) == 1
        index = schedule.attempt_index_completing_after(0, 25.0)
        assert schedule.attempt_completion(0, index) > 25.0

    def test_completions_between(self):
        schedule = AttemptSchedule(num_pairs=1, policy=AttemptPolicy.SYNCHRONOUS)
        assert schedule.completions_between(0, 0.0, 35.0) == [10.0, 20.0, 30.0]
        assert schedule.completions_between(0, 10.0, 20.0) == [20.0]

    def test_completion_stream(self):
        schedule = AttemptSchedule(num_pairs=1, policy=AttemptPolicy.SYNCHRONOUS)
        stream = schedule.completion_stream(0)
        assert [next(stream) for _ in range(3)] == [10.0, 20.0, 30.0]

    def test_validation(self):
        with pytest.raises(EntanglementError):
            AttemptSchedule(num_pairs=-1)
        with pytest.raises(EntanglementError):
            AttemptSchedule(num_pairs=1, cycle_time=0.0)
        schedule = AttemptSchedule(num_pairs=2)
        with pytest.raises(EntanglementError):
            schedule.offset(5)
        with pytest.raises(EntanglementError):
            schedule.completions_between(0, 5.0, 1.0)


class TestGenerator:
    def _generator(self, policy=AttemptPolicy.SYNCHRONOUS, psucc=0.4, seed=0,
                   pairs=10):
        schedule = AttemptSchedule(num_pairs=pairs, policy=policy)
        return EntanglementGenerator(schedule, psucc, seed=seed)

    def test_outcomes_are_memoised(self):
        generator = self._generator()
        first = [generator.attempt_succeeds(0, k) for k in range(50)]
        second = [generator.attempt_succeeds(0, k) for k in range(50)]
        assert first == second

    def test_reproducible_across_instances(self):
        a = self._generator(seed=7).merged_successes_between(0, 200)
        b = self._generator(seed=7).merged_successes_between(0, 200)
        assert [(e.time, e.pair_index) for e in a] == [(e.time, e.pair_index) for e in b]

    def test_different_seeds_differ(self):
        a = self._generator(seed=1).merged_successes_between(0, 300)
        b = self._generator(seed=2).merged_successes_between(0, 300)
        assert [(e.time, e.pair_index) for e in a] != [(e.time, e.pair_index) for e in b]

    def test_empirical_rate_close_to_psucc(self):
        generator = self._generator(psucc=0.4, seed=3, pairs=10)
        events = generator.merged_successes_between(0, 2000)
        # 10 pairs * 200 attempts * 0.4 = 800 expected successes.
        assert 700 <= len(events) <= 900

    def test_unit_probability_always_succeeds(self):
        generator = self._generator(psucc=1.0)
        events = generator.successes_between(0, 0, 100)
        assert len(events) == 10

    def test_first_success_after(self):
        generator = self._generator(psucc=1.0)
        event = generator.first_success_after(0, 25.0)
        assert event.time == pytest.approx(30.0)

    def test_merged_events_sorted(self):
        generator = self._generator(policy=AttemptPolicy.ASYNCHRONOUS, seed=5)
        events = generator.merged_successes_between(0, 500)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_expected_rate(self):
        generator = self._generator(psucc=0.4, pairs=10)
        assert generator.expected_rate() == pytest.approx(0.4)
        assert generator.expected_wait_for_next_success() > 0

    def test_invalid_probability(self):
        schedule = AttemptSchedule(num_pairs=1)
        with pytest.raises(EntanglementError):
            EntanglementGenerator(schedule, 0.0)
        with pytest.raises(EntanglementError):
            EntanglementGenerator(schedule, 1.5)

    def test_negative_attempt_rejected(self):
        generator = self._generator()
        with pytest.raises(EntanglementError):
            generator.attempt_succeeds(0, -1)
