"""Unit tests for the TLIM / QAOA / QFT generators and the registry."""

import pytest

from repro.benchmarks import (
    BENCHMARKS,
    QAOAParameters,
    TLIMParameters,
    benchmark_properties,
    build_benchmark,
    get_benchmark,
    list_benchmarks,
    maxcut_value,
    qaoa_maxcut_circuit,
    qaoa_regular_circuit,
    qft_circuit,
    qft_expected_counts,
    tlim_circuit,
    tlim_expected_counts,
)
from repro.exceptions import BenchmarkError


class TestTLIM:
    def test_gate_counts_match_formula(self):
        circuit = tlim_circuit(32, num_steps=10)
        expected = tlim_expected_counts(32, 10)
        assert circuit.num_two_qubit_gates() == expected["two_qubit"] == 310
        assert circuit.num_single_qubit_gates() == expected["single_qubit"] == 640
        assert circuit.depth() == expected["depth"] == 40

    def test_linear_connectivity(self):
        circuit = tlim_circuit(10, num_steps=3)
        for a, b in circuit.interactions():
            assert abs(a - b) == 1

    def test_custom_parameters_set_angles(self):
        params = TLIMParameters(coupling=2.0, transverse_field=1.0,
                                longitudinal_field=0.0, time_step=0.25)
        circuit = tlim_circuit(4, num_steps=1, parameters=params)
        rzz = [g for g in circuit.gates if g.name == "rzz"]
        assert rzz[0].params[0] == pytest.approx(params.zz_angle)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(BenchmarkError):
            tlim_circuit(1)
        with pytest.raises(BenchmarkError):
            tlim_circuit(4, num_steps=0)


class TestQAOA:
    def test_layer_structure(self):
        circuit = qaoa_regular_circuit(16, 4, layers=1, seed=2)
        counts = circuit.count_ops()
        assert counts["h"] == 16
        assert counts["rx"] == 16
        assert counts["rzz"] == 32  # n*d/2 edges

    def test_two_layer_counts(self):
        circuit = qaoa_regular_circuit(12, 4, layers=2, seed=2)
        counts = circuit.count_ops()
        assert counts["rx"] == 24
        assert counts["rzz"] == 48

    def test_explicit_edges(self):
        edges = [(0, 1), (1, 2)]
        circuit = qaoa_maxcut_circuit(3, edges)
        assert circuit.num_two_qubit_gates() == 2

    def test_invalid_edge_rejected(self):
        with pytest.raises(BenchmarkError):
            qaoa_maxcut_circuit(3, [(0, 5)])

    def test_mismatched_angles_rejected(self):
        with pytest.raises(BenchmarkError):
            QAOAParameters(gammas=(0.1, 0.2), betas=(0.3,))

    def test_maxcut_value(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        assert maxcut_value(edges, [0, 1, 0]) == 2
        assert maxcut_value(edges, [0, 0, 0]) == 0


class TestQFT:
    def test_gate_counts(self):
        circuit = qft_circuit(32)
        expected = qft_expected_counts(32)
        assert circuit.num_two_qubit_gates() == expected["two_qubit"] == 496
        assert circuit.num_single_qubit_gates() == expected["single_qubit"] == 32
        assert circuit.depth() == expected["depth"] == 63

    def test_with_swaps(self):
        circuit = qft_circuit(8, include_swaps=True)
        assert circuit.count_ops()["swap"] == 4

    def test_angles_decrease_geometrically(self):
        circuit = qft_circuit(4)
        cp_gates = [g for g in circuit.gates if g.name == "cp"]
        first_qubit_angles = [g.params[0] for g in cp_gates[:3]]
        assert first_qubit_angles[0] == pytest.approx(2 * first_qubit_angles[1])

    def test_invalid_size(self):
        with pytest.raises(BenchmarkError):
            qft_circuit(0)


class TestRegistry:
    def test_all_benchmarks_build(self):
        for name in list_benchmarks():
            circuit = build_benchmark(name)
            assert circuit.num_qubits == BENCHMARKS[name].num_qubits
            assert circuit.name == name

    def test_lookup_case_insensitive(self):
        assert get_benchmark("qft-32").name == "QFT-32"

    def test_unknown_benchmark(self):
        with pytest.raises(BenchmarkError):
            get_benchmark("nope")

    def test_table1_order(self):
        assert list_benchmarks() == [
            "TLIM-32", "QAOA-r4-32", "QAOA-r8-32", "QFT-32",
            "QAOA-r4-64", "QAOA-r8-64",
        ]

    def test_properties_helper(self):
        props = benchmark_properties("TLIM-32")
        assert props["qubits"] == 32
        assert props["two_qubit"] == 310

    def test_paper_columns_recorded(self):
        spec = get_benchmark("QFT-32")
        assert spec.paper_remote_2q == 256
        assert spec.paper_local_2q == 240


class TestBenchmarkFamilies:
    """Names beyond Table I are synthesised from the three families."""

    def test_family_members_build(self):
        for name, qubits in (("TLIM-16", 16), ("QFT-16", 16),
                             ("QAOA-r4-16", 16), ("QAOA-r6-24", 24)):
            circuit = build_benchmark(name)
            assert circuit.num_qubits == qubits
            assert circuit.name == name

    def test_family_lookup_case_insensitive_and_memoised(self):
        assert get_benchmark("qaoa-r4-16") is get_benchmark("QAOA-r4-16")

    def test_table1_names_keep_registry_entries(self):
        # Registry entries (with their paper columns) win over synthesis.
        assert get_benchmark("QAOA-r4-32").paper_remote_2q == 12

    def test_families_not_listed(self):
        build_benchmark("TLIM-16")
        assert "TLIM-16" not in list_benchmarks()

    def test_invalid_family_instance_rejected(self):
        with pytest.raises(BenchmarkError):
            build_benchmark("QFT-0")
        with pytest.raises(BenchmarkError):
            # 3-regular graph on 3 vertices is infeasible.
            build_benchmark("QAOA-r3-3")
