"""Unit tests for the gate library and Gate instances."""

import math

import numpy as np
import pytest

from repro.circuits.gate import (
    GATE_LIBRARY,
    Gate,
    GateSpec,
    controlled_phase_angle,
    gate_spec,
    gates_from_names,
    register_gate_spec,
)
from repro.exceptions import GateError


class TestGateSpec:
    def test_library_contains_core_gates(self):
        for name in ("h", "x", "z", "rx", "rz", "cx", "cz", "rzz", "cp", "swap"):
            assert name in GATE_LIBRARY

    def test_lookup_is_case_insensitive(self):
        assert gate_spec("CX") is gate_spec("cx")

    def test_unknown_gate_raises(self):
        with pytest.raises(GateError):
            gate_spec("totally-unknown")

    def test_diagonal_flags(self):
        assert gate_spec("cz").diagonal
        assert gate_spec("rzz").diagonal
        assert gate_spec("cp").diagonal
        assert not gate_spec("cx").diagonal

    def test_register_custom_spec(self):
        spec = GateSpec("mygate", 1, num_params=0)
        register_gate_spec(spec)
        assert gate_spec("mygate") is spec
        with pytest.raises(GateError):
            register_gate_spec(spec)
        register_gate_spec(spec, overwrite=True)
        del GATE_LIBRARY["mygate"]

    def test_invalid_spec_rejected(self):
        with pytest.raises(GateError):
            GateSpec("bad", 0)
        with pytest.raises(GateError):
            GateSpec("bad", 1, num_params=-1)


class TestGateInstances:
    def test_arity_checked(self):
        with pytest.raises(GateError):
            Gate("cx", (0,))
        with pytest.raises(GateError):
            Gate("h", (0, 1))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(GateError):
            Gate("cx", (2, 2))

    def test_negative_qubits_rejected(self):
        with pytest.raises(GateError):
            Gate("h", (-1,))

    def test_param_count_checked(self):
        with pytest.raises(GateError):
            Gate("rz", (0,))
        with pytest.raises(GateError):
            Gate("h", (0,), (0.1,))

    def test_properties(self):
        cnot = Gate("cx", (0, 1))
        assert cnot.is_two_qubit and not cnot.is_single_qubit
        assert not cnot.is_diagonal and not cnot.is_remote
        h = Gate("h", (3,))
        assert h.is_single_qubit
        measure = Gate("measure", (0,))
        assert measure.is_directive and measure.is_measurement

    def test_remote_label(self):
        gate = Gate("cx", (0, 1), label="remote")
        assert gate.is_remote
        assert gate.with_label(None).is_remote is False

    def test_remap(self):
        gate = Gate("rzz", (0, 3), (0.5,))
        remapped = gate.remap({0: 5, 3: 1})
        assert remapped.qubits == (5, 1)
        assert remapped.params == (0.5,)

    def test_shares_qubit(self):
        a = Gate("cx", (0, 1))
        b = Gate("cx", (1, 2))
        c = Gate("cx", (2, 3))
        assert a.shares_qubit(b)
        assert not a.shares_qubit(c)

    def test_hashable(self):
        assert len({Gate("h", (0,)), Gate("h", (0,)), Gate("h", (1,))}) == 2


class TestGateMatrices:
    def test_unitarity(self):
        for name in ("h", "x", "y", "z", "s", "t", "sx", "cx", "cz", "swap", "iswap"):
            spec = gate_spec(name)
            qubits = tuple(range(spec.num_qubits))
            matrix = Gate(name, qubits).matrix()
            identity = np.eye(matrix.shape[0])
            assert np.allclose(matrix @ matrix.conj().T, identity)

    def test_parametric_unitarity(self):
        for name, params in (("rx", (0.7,)), ("ry", (1.2,)), ("rz", (0.4,)),
                             ("p", (0.9,)), ("u3", (0.5, 0.2, 1.1)),
                             ("cp", (0.8,)), ("rzz", (0.6,))):
            spec = gate_spec(name)
            qubits = tuple(range(spec.num_qubits))
            matrix = Gate(name, qubits, params).matrix()
            identity = np.eye(matrix.shape[0])
            assert np.allclose(matrix @ matrix.conj().T, identity)

    def test_rz_is_diagonal(self):
        matrix = Gate("rz", (0,), (0.7,)).matrix()
        assert np.allclose(matrix, np.diag(np.diag(matrix)))

    def test_cx_action(self):
        matrix = Gate("cx", (0, 1)).matrix()
        state = np.zeros(4)
        state[2] = 1.0  # |10>
        assert np.allclose(matrix @ state, [0, 0, 0, 1])  # -> |11>

    def test_directive_has_no_matrix(self):
        with pytest.raises(GateError):
            Gate("measure", (0,)).matrix()

    def test_controlled_phase_angle(self):
        gate = Gate("cp", (0, 1), (0.8,))
        assert controlled_phase_angle(gate) == pytest.approx(0.8)
        with pytest.raises(GateError):
            controlled_phase_angle(Gate("cx", (0, 1)))

    def test_rzz_phases(self):
        theta = 0.6
        matrix = Gate("rzz", (0, 1), (theta,)).matrix()
        assert np.allclose(matrix[0, 0], np.exp(-1j * theta / 2))
        assert np.allclose(matrix[1, 1], np.exp(1j * theta / 2))


class TestHelpers:
    def test_gates_from_names(self):
        gates = gates_from_names(["h", "t", "rz"], qubit=2)
        assert [g.name for g in gates] == ["h", "t", "rz"]
        assert all(g.qubits == (2,) for g in gates)
        assert gates[2].params == (math.pi / 4,)

    def test_gates_from_names_rejects_two_qubit(self):
        with pytest.raises(GateError):
            gates_from_names(["cx"])
