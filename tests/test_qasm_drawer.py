"""Unit tests for the QASM round trip and the text drawer."""

import math

import pytest

from repro.benchmarks import qft_circuit
from repro.circuits import QuantumCircuit, draw_circuit, from_qasm, to_qasm
from repro.exceptions import CircuitError


class TestQasm:
    def test_round_trip_preserves_structure(self, small_remote_circuit):
        text = to_qasm(small_remote_circuit)
        parsed = from_qasm(text)
        assert parsed.num_qubits == small_remote_circuit.num_qubits
        assert parsed.num_gates == small_remote_circuit.num_gates
        assert [g.name for g in parsed.gates] == [
            g.name for g in small_remote_circuit.gates
        ]

    def test_round_trip_preserves_params(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.123456, 0)
        circuit.cp(math.pi / 8, 0, 1)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.gates[0].params[0] == pytest.approx(0.123456)
        assert parsed.gates[1].params[0] == pytest.approx(math.pi / 8)

    def test_measure_round_trip(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.measure(0)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.num_measurements() == 1

    def test_header_present(self, bell_circuit):
        text = to_qasm(bell_circuit)
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[2];" in text

    def test_qft_round_trip(self):
        circuit = qft_circuit(5)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.count_ops() == circuit.count_ops()

    def test_parse_rejects_garbage(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nnot a gate line\n")

    def test_parse_requires_qreg(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nh q[0];\n")


class TestDrawer:
    def test_drawer_contains_all_qubits(self, small_remote_circuit):
        art = draw_circuit(small_remote_circuit)
        for qubit in range(small_remote_circuit.num_qubits):
            assert f"q{qubit:>3}:" in art

    def test_remote_gates_marked(self, small_remote_circuit):
        art = draw_circuit(small_remote_circuit)
        assert "*" in art

    def test_max_layers_truncation(self):
        circuit = QuantumCircuit(1)
        for _ in range(20):
            circuit.h(0)
        art = draw_circuit(circuit, max_layers=3)
        assert "..." in art

    def test_header_line(self, bell_circuit):
        art = draw_circuit(bell_circuit)
        assert art.splitlines()[0].startswith("bell")
