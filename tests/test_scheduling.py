"""Unit tests for segmentation, ASAP/ALAP variants, policies, and lookup."""

import pytest

from repro.benchmarks import qft_circuit
from repro.circuits import QuantumCircuit
from repro.partitioning import distribute_circuit
from repro.scheduling import (
    AdaptivePolicy,
    ScheduleLookupTable,
    SchedulingVariant,
    StaticPolicy,
    build_lookup_table,
    compile_segment_variants,
    default_segment_length,
    segment_circuit,
)
from repro.scheduling.segmentation import reassemble
from repro.exceptions import SchedulingError


@pytest.fixture
def remote_heavy_circuit():
    """Distributed QFT-8: plenty of remote gates for segmentation tests."""
    return distribute_circuit(qft_circuit(8), num_nodes=2, seed=0).circuit


class TestSegmentation:
    def test_segments_cover_whole_circuit(self, remote_heavy_circuit):
        segments = segment_circuit(remote_heavy_circuit, 3)
        total_gates = sum(s.num_gates for s in segments)
        assert total_gates == remote_heavy_circuit.num_gates
        rebuilt = reassemble(segments, remote_heavy_circuit.num_qubits)
        assert [g.name for g in rebuilt.gates] == [
            g.name for g in remote_heavy_circuit.gates
        ]

    def test_each_segment_has_at_most_m_remote(self, remote_heavy_circuit):
        m = 4
        segments = segment_circuit(remote_heavy_circuit, m)
        assert all(s.num_remote <= m for s in segments)
        # All but possibly the last remote-bearing segment are full.
        full = [s for s in segments if s.num_remote == m]
        assert len(full) >= len(segments) - 2

    def test_boundaries_are_contiguous(self, remote_heavy_circuit):
        segments = segment_circuit(remote_heavy_circuit, 5)
        for before, after in zip(segments, segments[1:]):
            assert before.end_gate == after.start_gate

    def test_circuit_without_remote_gates(self, bell_circuit):
        segments = segment_circuit(bell_circuit, 2)
        assert len(segments) == 1
        assert segments[0].num_remote == 0

    def test_invalid_segment_length(self, bell_circuit):
        with pytest.raises(SchedulingError):
            segment_circuit(bell_circuit, 0)

    def test_default_segment_length(self):
        assert default_segment_length(10, 0.4) == 4
        assert default_segment_length(1, 0.1) == 1
        with pytest.raises(SchedulingError):
            default_segment_length(-1, 0.4)
        with pytest.raises(SchedulingError):
            default_segment_length(10, 0.0)


class TestVariants:
    def test_variants_are_equivalent(self, remote_heavy_circuit):
        segments = segment_circuit(remote_heavy_circuit, 4)
        for segment in segments[:3]:
            variants = compile_segment_variants(segment)
            assert variants.verify_equivalence()

    def test_asap_not_later_than_alap(self, remote_heavy_circuit):
        segments = segment_circuit(remote_heavy_circuit, 4)
        for segment in segments:
            if segment.num_remote == 0:
                continue
            variants = compile_segment_variants(segment)
            assert variants.mean_remote_position(SchedulingVariant.ASAP) <= \
                variants.mean_remote_position(SchedulingVariant.ALAP) + 1e-9

    def test_get_by_name(self, small_remote_circuit):
        segments = segment_circuit(small_remote_circuit, 2)
        variants = compile_segment_variants(segments[0])
        assert variants.get("original") is variants.original
        assert variants.get("asap") is variants.asap
        with pytest.raises(SchedulingError):
            variants.get("bogus")


class TestPolicies:
    def test_adaptive_rule_of_the_paper(self):
        policy = AdaptivePolicy()
        threshold = policy.effective_threshold(segment_remote_count=4)
        assert threshold == 4
        assert policy.choose(5, threshold) == SchedulingVariant.ASAP
        assert policy.choose(0, threshold) == SchedulingVariant.ALAP
        assert policy.choose(2, threshold) == SchedulingVariant.ORIGINAL

    def test_explicit_thresholds(self):
        policy = AdaptivePolicy(asap_threshold=10, alap_threshold=2)
        assert policy.effective_threshold(4) == 10
        assert policy.choose(11, 10) == SchedulingVariant.ASAP
        assert policy.choose(2, 10) == SchedulingVariant.ALAP
        assert policy.choose(5, 10) == SchedulingVariant.ORIGINAL

    def test_invalid_thresholds(self):
        with pytest.raises(SchedulingError):
            AdaptivePolicy(asap_threshold=-1)
        with pytest.raises(SchedulingError):
            AdaptivePolicy(asap_threshold=1, alap_threshold=3)
        with pytest.raises(SchedulingError):
            AdaptivePolicy().choose(-1, 2)

    def test_static_policy_names(self):
        assert StaticPolicy.ASAP.value == SchedulingVariant.ASAP


class TestLookupTable:
    def test_build_and_select(self, remote_heavy_circuit):
        table = build_lookup_table(remote_heavy_circuit, 4)
        assert table.num_segments >= 2
        chosen_asap = table.select(0, available_epr=100, decision_time=1.0)
        chosen_alap = table.select(0, available_epr=0, decision_time=2.0)
        assert chosen_asap is table.variants[0].asap
        assert chosen_alap is table.variants[0].alap
        histogram = table.variant_histogram()
        assert histogram["asap"] == 1 and histogram["alap"] == 1

    def test_decisions_recorded_and_reset(self, remote_heavy_circuit):
        table = build_lookup_table(remote_heavy_circuit, 4)
        table.select(0, 1)
        assert len(table.decisions) == 1
        table.reset_decisions()
        assert table.decisions == []

    def test_segment_index_validated(self, remote_heavy_circuit):
        table = build_lookup_table(remote_heavy_circuit, 4)
        with pytest.raises(SchedulingError):
            table.select(99, 1)

    def test_empty_table_rejected(self):
        with pytest.raises(SchedulingError):
            ScheduleLookupTable([])
