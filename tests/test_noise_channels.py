"""Unit tests for noise channels and the density-matrix simulator."""

import numpy as np
import pytest

from repro.circuits.gate import Gate
from repro.noise import (
    DensityMatrix,
    amplitude_damping_kraus,
    average_gate_fidelity_of_depolarizing,
    dephasing_kraus,
    depolarizing_kraus,
    depolarizing_parameter_for_fidelity,
    expand_operator,
    pauli_channel_kraus,
    validate_kraus,
)
from repro.exceptions import NoiseError


class TestChannels:
    @pytest.mark.parametrize("p", [0.0, 0.1, 0.5, 1.0])
    def test_depolarizing_is_trace_preserving(self, p):
        assert validate_kraus(depolarizing_kraus(p, 1))
        assert validate_kraus(depolarizing_kraus(p, 2))

    def test_pauli_channel_completeness(self):
        kraus = pauli_channel_kraus({"X": 0.05, "Y": 0.02, "Z": 0.03})
        assert validate_kraus(kraus)

    def test_dephasing_and_damping(self):
        assert validate_kraus(dephasing_kraus(0.1))
        assert validate_kraus(amplitude_damping_kraus(0.3))

    def test_fully_depolarizing_limit(self):
        rho = DensityMatrix(1)
        rho.apply_kraus(depolarizing_kraus(1.0, 1), (0,))
        assert np.allclose(rho.matrix, np.eye(2) / 2, atol=1e-9)

    def test_fidelity_parameter_round_trip(self):
        for fidelity in (0.999, 0.99, 0.95):
            for qubits in (1, 2):
                p = depolarizing_parameter_for_fidelity(fidelity, qubits)
                assert average_gate_fidelity_of_depolarizing(p, qubits) == pytest.approx(
                    fidelity
                )

    def test_invalid_inputs(self):
        with pytest.raises(NoiseError):
            depolarizing_kraus(1.5, 1)
        with pytest.raises(NoiseError):
            pauli_channel_kraus({"X": 0.9, "Z": 0.4})
        with pytest.raises(NoiseError):
            pauli_channel_kraus({"Q": 0.1})
        with pytest.raises(NoiseError):
            depolarizing_parameter_for_fidelity(0.1, 1)
        with pytest.raises(NoiseError):
            amplitude_damping_kraus(1.2)


class TestDensityMatrix:
    def test_initial_state(self):
        rho = DensityMatrix(2)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.fidelity_with_pure([1, 0, 0, 0]) == pytest.approx(1.0)

    def test_apply_gate_builds_bell_state(self):
        rho = DensityMatrix(2)
        rho.apply_gate(Gate("h", (0,)))
        rho.apply_gate(Gate("cx", (0, 1)))
        bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert rho.fidelity_with_pure(bell) == pytest.approx(1.0)
        assert rho.is_physical()

    def test_expand_operator_identity_consistency(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        full = expand_operator(x, (1,), 2)
        assert np.allclose(full, np.kron(np.eye(2), x))
        full0 = expand_operator(x, (0,), 2)
        assert np.allclose(full0, np.kron(x, np.eye(2)))

    def test_expand_operator_qubit_order(self):
        cx = Gate("cx", (0, 1)).matrix()
        reversed_cx = expand_operator(cx, (1, 0), 2)
        state = np.zeros(4)
        state[1] = 1.0  # |01> : qubit1 = 1 acts as control
        assert np.allclose(reversed_cx @ state, [0, 0, 0, 1])

    def test_partial_trace_of_bell_pair(self):
        rho = DensityMatrix.maximally_entangled(1)
        reduced = rho.partial_trace([0])
        assert np.allclose(reduced.matrix, np.eye(2) / 2, atol=1e-9)

    def test_partial_trace_keeps_order(self):
        rho = DensityMatrix(2)
        rho.apply_gate(Gate("x", (1,)))
        reduced = rho.partial_trace([1])
        assert reduced.fidelity_with_pure([0, 1]) == pytest.approx(1.0)

    def test_from_product(self):
        plus = 0.5 * np.array([[1, 1], [1, 1]], dtype=complex)
        zero = np.array([[1, 0], [0, 0]], dtype=complex)
        rho = DensityMatrix.from_product([plus, zero])
        assert rho.num_qubits == 2
        assert rho.trace() == pytest.approx(1.0)

    def test_measurement_with_feedforward_deterministic(self):
        # Teleportation-style correction: X on qubit1 when qubit0 measures 1.
        rho = DensityMatrix(2)
        rho.apply_gate(Gate("x", (0,)))  # qubit0 = |1>
        x_matrix = Gate("x", (0,)).matrix()
        rho.measure_with_feedforward(0, corrections={1: [(x_matrix, (1,))]})
        reduced = rho.partial_trace([1])
        assert reduced.fidelity_with_pure([0, 1]) == pytest.approx(1.0)

    def test_measurement_error_mixes_outcome(self):
        rho = DensityMatrix(2)
        rho.apply_gate(Gate("x", (0,)))
        x_matrix = Gate("x", (0,)).matrix()
        rho.measure_with_feedforward(0, corrections={1: [(x_matrix, (1,))]},
                                     error_rate=0.25)
        reduced = rho.partial_trace([1])
        assert reduced.fidelity_with_pure([0, 1]) == pytest.approx(0.75)

    def test_x_basis_measurement(self):
        rho = DensityMatrix(1)
        rho.apply_gate(Gate("h", (0,)))  # |+> state
        rho.measure_with_feedforward(0, corrections={}, basis="x")
        # |+> measured in X gives outcome 0 deterministically -> state |0> in
        # the rotated frame; trace preserved either way.
        assert rho.trace() == pytest.approx(1.0)

    def test_expectation(self):
        rho = DensityMatrix(1)
        z = np.diag([1.0, -1.0])
        assert rho.expectation(z, (0,)) == pytest.approx(1.0)
        rho.apply_gate(Gate("x", (0,)))
        assert rho.expectation(z, (0,)) == pytest.approx(-1.0)

    def test_noise_reduces_purity(self):
        rho = DensityMatrix(1)
        rho.apply_kraus(depolarizing_kraus(0.2, 1), (0,))
        assert rho.purity() < 1.0
        assert rho.is_physical()

    def test_validation(self):
        with pytest.raises(NoiseError):
            DensityMatrix(0)
        with pytest.raises(NoiseError):
            DensityMatrix(20)
        with pytest.raises(NoiseError):
            DensityMatrix(1, np.eye(4))
        with pytest.raises(NoiseError):
            DensityMatrix.from_statevector([0.0, 0.0])
        rho = DensityMatrix(2)
        with pytest.raises(NoiseError):
            rho.apply_unitary(np.eye(2), (0, 1))
        with pytest.raises(NoiseError):
            rho.partial_trace([0, 0])
        with pytest.raises(NoiseError):
            rho.measure_with_feedforward(0, {}, basis="y")
