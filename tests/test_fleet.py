"""Worker-fleet tests: protocol, lease lifecycle, and fault injection.

The contract under test is the PR's acceptance criterion: a sweep run on
``FleetBackend`` with two or more workers — including one SIGKILLed
mid-sweep and one joining late — produces results **byte-identical**
(``to_json``) to ``SerialBackend``, and each compiled cell is shipped to
each worker at most once (pinned via coordinator stats).  Around that sit
the wire-protocol pins (framing, version handshake) and the
coordinator-restart-with-partial-store recovery path.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine.backends import SerialBackend, get_backend
from repro.engine.cache import ArtifactCache
from repro.exceptions import ConfigurationError, FleetError
from repro.fleet import FleetBackend, FleetWorker
from repro.fleet import protocol
from repro.fleet.coordinator import FleetCoordinator
from repro.study.store import RunStore
from repro.study.study import Study

ROOT = Path(__file__).resolve().parents[1]

SMALL_SYSTEM = {"data_qubits_per_node": 16, "comm_qubits_per_node": 4,
                "buffer_qubits_per_node": 4}


def small_spec(**overrides):
    """Four cells × a few seeds — finishes in well under a second."""
    spec = {"benchmarks": ["TLIM-32", "QAOA-r4-16"],
            "designs": ["ideal", "original"],
            "num_runs": 4, "system": dict(SMALL_SYSTEM)}
    spec.update(overrides)
    return spec


def serial_json(spec):
    with Study.from_spec(spec, backend=SerialBackend()) as study:
        return study.run().to_json()


def poll_until(condition, timeout=60.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = condition()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


class fleet_of:
    """Context manager: a started backend plus N in-thread workers."""

    def __init__(self, num_workers=2, **backend_kwargs):
        backend_kwargs.setdefault("listen", "127.0.0.1:0")
        backend_kwargs.setdefault("poll", 0.02)
        self.backend = FleetBackend(**backend_kwargs)
        self.num_workers = num_workers
        self.workers = []
        self.threads = []

    def __enter__(self):
        self.backend.start()
        for index in range(self.num_workers):
            self.add_worker(f"w{index}")
        return self

    def add_worker(self, name, cache=None):
        worker = FleetWorker(self.backend.address, name=name, quiet=True,
                             cache=cache or ArtifactCache(), retry=30.0)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        self.workers.append(worker)
        self.threads.append(thread)
        return worker

    def __exit__(self, *exc_info):
        for worker in self.workers:
            worker.stop()
        self.backend.close()
        for thread in self.threads:
            thread.join(timeout=5)


class BoomCell:
    """Module-level (hence picklable) cell that always fails to execute."""

    cache_key = "boom-cell"

    def execute_batch(self, seeds):
        raise RuntimeError("injected failure")


def spawn_worker_process(address, name, retry=60.0):
    """A real ``python -m repro worker`` subprocess (SIGKILL target)."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", address, "--name", name, "--retry", str(retry),
         "--quiet"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        a, b = socket.socketpair()
        try:
            message = {"type": "lease", "seeds": [1, 2, 3], "cell": "ab" * 32}
            protocol.send_message(a, message)
            assert protocol.recv_message(b) == message
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert protocol.recv_message(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\xff{\"type")  # promises 255 bytes
            a.close()
            with pytest.raises(FleetError, match="mid-frame"):
                protocol.recv_message(b)
        finally:
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(FleetError, match="limit"):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_untyped_payload_rejected(self):
        a, b = socket.socketpair()
        try:
            body = b"[1,2,3]"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(FleetError, match="typed message"):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_payload_pickle_round_trip_is_exact(self):
        values = [0.1 + 0.2, 1e-308, float("inf"), (1, "x", [2.5])]
        assert protocol.unpack_payload(protocol.pack_payload(values)) == values

    def test_parse_address(self):
        assert protocol.parse_address("127.0.0.1:8766") == ("127.0.0.1", 8766)
        assert protocol.parse_address(":9000") == ("0.0.0.0", 9000)
        with pytest.raises(ConfigurationError):
            protocol.parse_address("no-port")
        with pytest.raises(ConfigurationError):
            protocol.parse_address("host:http")

    def test_version_mismatch_is_rejected_at_hello(self):
        coordinator = FleetCoordinator("127.0.0.1", 0).start()
        try:
            sock = socket.create_connection(
                ("127.0.0.1", coordinator.port), timeout=5)
            try:
                protocol.send_message(sock, {
                    "type": "hello", "version": protocol.PROTOCOL_VERSION + 1,
                    "worker": "skewed"})
                reply = protocol.recv_message(sock)
                assert reply["type"] == "error"
                assert "version" in reply["reason"]
            finally:
                sock.close()
        finally:
            coordinator.close()


# ----------------------------------------------------------------------
# tentpole: fleet results equal serial results, byte for byte
# ----------------------------------------------------------------------
class TestFleetMatchesSerial:
    def test_two_workers_byte_identical_and_cells_ship_once(self):
        spec = small_spec()
        baseline = serial_json(spec)
        with fleet_of(2, chunksize=2) as rig:
            with Study.from_spec(spec, backend=rig.backend) as study:
                fleet_json = study.run().to_json()
            stats = rig.backend.stats()
        assert fleet_json == baseline
        # Both workers participated, and no compiled cell was shipped to
        # any worker more than once (the fingerprint cache held).
        assert stats["workers_seen"] == 2
        assert stats["chunks_done"] > 0
        assert stats["cells_shipped"] >= 1
        assert stats["max_ships_per_cell_worker"] == 1

    def test_dataclass_for_dataclass_equality(self):
        spec = small_spec(num_runs=3)
        with Study.from_spec(spec, backend=SerialBackend()) as study:
            serial_records = study.run().records
        with fleet_of(1, chunksize=2) as rig:
            with Study.from_spec(spec, backend=rig.backend) as study:
                fleet_records = study.run().records
        assert len(fleet_records) == len(serial_records)
        for mine, ref in zip(fleet_records, serial_records):
            assert mine == ref

    def test_streams_to_run_store_chunk_exactly(self, tmp_path):
        spec = small_spec()
        baseline = serial_json(spec)
        with fleet_of(2) as rig:
            with Study.from_spec(spec, backend=rig.backend) as study:
                results = study.run(store=tmp_path / "store",
                                    store_chunk_size=2)
        assert results.to_json() == baseline
        store = RunStore.load(tmp_path / "store")
        assert store.is_complete
        assert store.load_results().to_json() == baseline

    def test_repeat_sweeps_reuse_worker_cell_caches(self):
        spec = small_spec(num_runs=2)
        with fleet_of(1) as rig:
            for _ in range(2):
                with Study.from_spec(spec, backend=rig.backend) as study:
                    study.run()
            stats = rig.backend.stats()
        # The second sweep re-uses the cells the first one shipped.
        assert stats["max_ships_per_cell_worker"] == 1

    def test_get_backend_registry_and_env(self, monkeypatch):
        assert isinstance(get_backend("fleet"), FleetBackend)
        monkeypatch.setenv("REPRO_BACKEND", "fleet")
        assert isinstance(get_backend(None), FleetBackend)
        monkeypatch.setenv("REPRO_FLEET_ADDR", "10.1.2.3:4567")
        backend = get_backend("fleet")
        assert (backend._host, backend._port) == ("10.1.2.3", 4567)

    def test_empty_task_list(self):
        backend = FleetBackend(listen="127.0.0.1:0")
        try:
            assert backend.execute([]) == []
        finally:
            backend.close()


# ----------------------------------------------------------------------
# satellite: fault injection
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_worker_joining_after_sweep_starts(self):
        spec = small_spec()
        baseline = serial_json(spec)
        rig = fleet_of(0)  # no workers yet
        with rig:
            done = {}

            def sweep():
                with Study.from_spec(spec, backend=rig.backend) as study:
                    done["json"] = study.run().to_json()

            thread = threading.Thread(target=sweep, daemon=True)
            thread.start()
            # The sweep is underway with zero workers; joining now must
            # pick it up from the pending lease table.
            poll_until(lambda: rig.backend.coordinator._sweep is not None)
            rig.add_worker("latecomer")
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert done["json"] == baseline

    def test_sigkilled_worker_mid_sweep_is_byte_identical(self):
        spec = small_spec(num_runs=24)  # 96 chunk-1 leases: a wide window
        baseline = serial_json(spec)
        backend = FleetBackend(listen="127.0.0.1:0", chunksize=1, poll=0.02)
        backend.start()
        victim = spawn_worker_process(backend.address, "victim")
        done = {}
        try:
            poll_until(lambda: backend.workers_connected() >= 1, timeout=30)

            def sweep():
                with Study.from_spec(spec, backend=backend) as study:
                    done["json"] = study.run().to_json()

            thread = threading.Thread(target=sweep, daemon=True)
            thread.start()
            # Let the victim commit a few chunks, then SIGKILL it cold.
            poll_until(lambda: backend.stats()["chunks_done"] >= 3,
                       timeout=60)
            killed_at = backend.stats()["chunks_done"]
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=10)
            assert killed_at < 96, "sweep finished before the kill landed"
            # A second worker joins late and finishes the remainder
            # (including the chunks the victim held leases on).
            rescuer = FleetWorker(backend.address, name="rescuer",
                                  quiet=True, cache=ArtifactCache())
            rescue_thread = threading.Thread(target=rescuer.run, daemon=True)
            rescue_thread.start()
            thread.join(timeout=120)
            assert not thread.is_alive(), "sweep did not recover"
            rescuer.stop()
            stats = backend.stats()
        finally:
            backend.close()
            if victim.poll() is None:  # pragma: no cover - defensive
                victim.kill()
        assert done["json"] == baseline
        assert stats["workers_seen"] >= 2
        assert stats["max_ships_per_cell_worker"] == 1

    def test_coordinator_restart_with_partial_store(self, tmp_path):
        spec = small_spec()
        baseline = serial_json(spec)
        store_path = tmp_path / "store"
        # First coordinator commits a handful of chunks, then dies.
        with fleet_of(1, chunksize=1) as rig:
            with Study.from_spec(spec, backend=rig.backend) as study:
                study.run(store=store_path, store_chunk_size=1, max_chunks=4)
        partial = RunStore.load(store_path)
        assert 0 < partial.summary()["done_chunks"] < \
            partial.summary()["total_chunks"]
        # A fresh coordinator (new port, new workers) resumes the store.
        with fleet_of(2, chunksize=1) as rig:
            with Study.from_spec(spec, backend=rig.backend) as study:
                resumed = study.run(store=store_path, store_chunk_size=1)
        assert resumed.to_json() == baseline
        assert RunStore.load(store_path).load_results().to_json() == baseline

    def test_failing_chunk_fails_sweep_after_retries(self):
        backend = FleetBackend(listen="127.0.0.1:0", poll=0.02)
        backend.start()
        worker = FleetWorker(backend.address, name="w0", quiet=True,
                             cache=ArtifactCache())
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            coordinator = backend.coordinator
            sweep = coordinator.submit([("boom-cell", [1, 2])],
                                       {"boom-cell": BoomCell()})
            poll_until(lambda: sweep.error is not None, timeout=30)
            assert "failed" in str(sweep.error)
        finally:
            worker.stop()
            backend.close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# coordinator odds and ends
# ----------------------------------------------------------------------
class TestCoordinator:
    def test_one_sweep_at_a_time(self):
        coordinator = FleetCoordinator("127.0.0.1", 0).start()
        try:
            coordinator.submit([("k", [1])], {"k": object()})
            with pytest.raises(FleetError, match="already in flight"):
                coordinator.submit([("k", [2])], {"k": object()})
        finally:
            coordinator.close()

    def test_submit_unknown_cell_rejected(self):
        coordinator = FleetCoordinator("127.0.0.1", 0).start()
        try:
            with pytest.raises(FleetError, match="no compiled artifact"):
                coordinator.submit([("mystery", [1])], {})
        finally:
            coordinator.close()

    def test_worker_gives_up_when_no_coordinator(self):
        worker = FleetWorker("127.0.0.1:1", retry=0.2, quiet=True)
        assert worker.run() == 1

    def test_closed_coordinator_sends_workers_home(self):
        backend = FleetBackend(listen="127.0.0.1:0", poll=0.02)
        backend.start()
        worker = FleetWorker(backend.address, name="w0", quiet=True,
                             cache=ArtifactCache(), retry=0.5)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        poll_until(lambda: backend.workers_connected() == 1, timeout=30)
        backend.close()
        thread.join(timeout=30)
        assert not thread.is_alive()


# ----------------------------------------------------------------------
# robustness hardening: heartbeat idle-timeout, quarantine breaker,
# jittered backoff, per-worker throughput stats
# ----------------------------------------------------------------------
def raw_worker(coordinator, name):
    """A hand-driven worker connection past the HELLO/WELCOME handshake."""
    sock = socket.create_connection(("127.0.0.1", coordinator.port),
                                    timeout=10)
    protocol.send_message(sock, {"type": "hello",
                                 "version": protocol.PROTOCOL_VERSION,
                                 "worker": name})
    welcome = protocol.recv_message(sock)
    assert welcome["type"] == "welcome"
    return sock


class TestHardening:
    def test_silent_worker_loses_lease_via_heartbeat_timeout(self):
        """Acceptance criterion: a connected-but-silent worker is declared
        dead by the heartbeat idle-timeout and its chunk is reassigned
        long before the lease reaper's deadline would fire."""
        coordinator = FleetCoordinator(
            "127.0.0.1", 0, poll=0.05, lease_timeout=60.0,
            heartbeat_timeout=1.0).start()
        mute = healthy = None
        try:
            coordinator.submit([("cell", [1, 2])], {"cell": BoomCell()})
            mute = raw_worker(coordinator, "mute")
            protocol.send_message(mute, {"type": "ready"})
            lease = protocol.recv_message(mute)
            assert lease["type"] == "lease" and lease["chunk"] == 0
            # Stay silent: no heartbeat, no result.  The TCP connection
            # stays ESTABLISHED, so only the idle-timeout can save us.
            started = time.monotonic()
            poll_until(lambda:
                       coordinator.stats()["heartbeat_disconnects"] == 1,
                       timeout=30)
            elapsed = time.monotonic() - started
            assert elapsed < 30.0  # far before the 60 s lease deadline
            # The chunk is pending again: a healthy worker gets it now.
            healthy = raw_worker(coordinator, "healthy")
            protocol.send_message(healthy, {"type": "ready"})
            release = protocol.recv_message(healthy)
            assert release["type"] == "lease" and release["chunk"] == 0
            assert release["lease"] != lease["lease"]
        finally:
            for sock in (mute, healthy):
                if sock is not None:
                    sock.close()
            coordinator.close()

    def test_repeated_failures_quarantine_the_worker(self):
        coordinator = FleetCoordinator(
            "127.0.0.1", 0, poll=0.05, quarantine_after=1,
            quarantine_period=60.0).start()
        flaky = None
        try:
            coordinator.submit([("cell", [1]), ("cell", [2])],
                               {"cell": BoomCell()})
            flaky = raw_worker(coordinator, "flaky")
            protocol.send_message(flaky, {"type": "ready"})
            lease = protocol.recv_message(flaky)
            assert lease["type"] == "lease"
            protocol.send_message(flaky, {
                "type": "failure", "lease": lease["lease"],
                "chunk": lease["chunk"], "message": "injected failure"})
            # The breaker opens: the reply to the failure is wait, not
            # the other pending chunk.
            assert protocol.recv_message(flaky)["type"] == "wait"
            stats = coordinator.stats()
            assert stats["workers_quarantined"] == 1
            assert stats["quarantined_now"] == ["flaky"]
            worker = stats["per_worker"]["flaky"]
            assert worker["failures"] == 1 and worker["quarantined"]
        finally:
            if flaky is not None:
                flaky.close()
            coordinator.close()

    def test_backoff_jitter_is_seeded_and_bounded(self):
        one = FleetWorker("127.0.0.1:1", seed=42, quiet=True)
        two = FleetWorker("127.0.0.1:1", seed=42, quiet=True)
        draws_one = [one._jittered(0.8) for _ in range(16)]
        draws_two = [two._jittered(0.8) for _ in range(16)]
        assert draws_one == draws_two  # same seed → same retry schedule
        assert all(0.4 <= d <= 0.8 for d in draws_one)
        assert len(set(draws_one)) > 1  # actually jittered

    def test_per_worker_throughput_reported_after_sweep(self):
        spec = small_spec()
        with fleet_of(2, chunksize=2) as rig:
            with Study.from_spec(spec, backend=rig.backend) as study:
                study.run()
            stats = rig.backend.stats()
        per_worker = stats["per_worker"]
        assert set(per_worker) == {"w0", "w1"}
        assert sum(w["chunks"] for w in per_worker.values()) \
            == stats["chunks_done"]
        for worker in per_worker.values():
            assert worker["seeds_per_s"] >= 0.0
            assert worker["failures"] == 0
            assert not worker["quarantined"]
