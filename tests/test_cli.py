"""Tests for the ``python -m repro`` command line."""

import json

import pytest

from repro.study import ResultSet
from repro.study.cli import main, parse_axis
from repro.study.grid import Axis

SMALL_SYSTEM_FLAGS = [
    "--data-qubits", "16", "--comm-qubits", "4", "--buffer-qubits", "4",
]


class TestParseAxis:
    def test_single_field(self):
        axis = parse_axis("epr_success_probability=0.2,0.4")
        assert axis == Axis("epr_success_probability", [0.2, 0.4])

    def test_zipped_fields(self):
        axis = parse_axis("comm_qubits_per_node,buffer_qubits_per_node=4:4,8:8")
        assert axis.fields == ("comm_qubits_per_node", "buffer_qubits_per_node")
        assert axis.values == ((4, 4), (8, 8))

    def test_non_numeric_values_stay_strings(self):
        axis = parse_axis("benchmark=TLIM-32,QFT-32")
        assert axis.values == ("TLIM-32", "QFT-32")

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_axis("no-equals-sign")
        with pytest.raises(ValueError):
            parse_axis("a,b=1:2,3")


class TestRunCommand:
    def test_run_writes_loadable_json(self, tmp_path, capsys):
        out = tmp_path / "rs.json"
        code = main(["run", "--benchmark", "TLIM-32", "--design", "ideal",
                     "--runs", "2", *SMALL_SYSTEM_FLAGS,
                     "--out", str(out)])
        assert code == 0
        reloaded = ResultSet.load(out)
        assert len(reloaded) == 2
        assert reloaded.benchmarks() == ["TLIM-32"]
        assert "mean depth" in capsys.readouterr().out

    def test_run_family_benchmark(self, tmp_path):
        out = tmp_path / "rs.json"
        code = main(["run", "--benchmark", "QAOA-r4-16", "--design", "ideal",
                     "--runs", "1", "--quiet", "--out", str(out)])
        assert code == 0
        assert ResultSet.load(out).benchmarks() == ["QAOA-r4-16"]

    def test_run_csv_output(self, tmp_path):
        out = tmp_path / "rs.csv"
        main(["run", "--benchmark", "TLIM-32", "--design", "ideal",
              "--runs", "1", "--quiet", *SMALL_SYSTEM_FLAGS,
              "--out", str(out)])
        header = out.read_text().splitlines()[0]
        assert header.startswith("benchmark,design,seed,")

    def test_unknown_benchmark_exits_nonzero(self, capsys):
        code = main(["run", "--benchmark", "NOPE-1", "--runs", "1"])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_missing_benchmark_exits_nonzero(self, capsys):
        code = main(["run", "--runs", "1"])
        assert code == 2
        assert "no benchmark" in capsys.readouterr().err


class TestSweepCommand:
    def test_axis_sweep(self, tmp_path):
        out = tmp_path / "sweep.json"
        code = main(["sweep", "--benchmark", "TLIM-32", "--design", "ideal",
                     "--design", "adapt_buf", "--runs", "1",
                     *SMALL_SYSTEM_FLAGS,
                     "--axis",
                     "comm_qubits_per_node,buffer_qubits_per_node=4:4,8:8",
                     "--quiet", "--out", str(out)])
        assert code == 0
        results = ResultSet.load(out)
        assert len(results) == 4
        assert sorted(results.group_by("comm_qubits_per_node")) == [4, 8]

    def test_spec_file_sweep(self, tmp_path):
        spec = {
            "benchmarks": ["TLIM-32"],
            "designs": ["ideal"],
            "num_runs": 1,
            "system": {"data_qubits_per_node": 16,
                       "comm_qubits_per_node": 4,
                       "buffer_qubits_per_node": 4},
            "axes": [{"fields": ["epr_success_probability"],
                      "values": [0.2, 0.8]}],
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        out = tmp_path / "rs.json"
        code = main(["sweep", "--spec", str(spec_path), "--quiet",
                     "--out", str(out)])
        assert code == 0
        results = ResultSet.load(out)
        assert results.values("epr_success_probability") == [0.2, 0.8]

    def test_spec_with_benchmark_axis(self, tmp_path):
        spec = {
            "designs": ["ideal"],
            "num_runs": 1,
            "system": {"data_qubits_per_node": 16,
                       "comm_qubits_per_node": 4,
                       "buffer_qubits_per_node": 4},
            "axes": [{"fields": ["benchmark"],
                      "values": ["TLIM-32", "QFT-32"]}],
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        out = tmp_path / "rs.json"
        assert main(["sweep", "--spec", str(spec_path), "--quiet",
                     "--out", str(out)]) == 0
        assert ResultSet.load(out).benchmarks() == ["TLIM-32", "QFT-32"]

    def test_benchmark_flag_replaces_spec_benchmark_axis(self, tmp_path):
        spec = {
            "designs": ["ideal"],
            "num_runs": 1,
            "system": {"data_qubits_per_node": 16,
                       "comm_qubits_per_node": 4,
                       "buffer_qubits_per_node": 4},
            "axes": [{"fields": ["benchmark"],
                      "values": ["TLIM-32", "QFT-32"]}],
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        out = tmp_path / "rs.json"
        assert main(["sweep", "--spec", str(spec_path), "--benchmark",
                     "TLIM-16", "--quiet", "--out", str(out)]) == 0
        assert ResultSet.load(out).benchmarks() == ["TLIM-16"]

    def test_benchmark_axis_on_flags_path(self, tmp_path):
        out = tmp_path / "rs.json"
        assert main(["sweep", "--axis", "benchmark=TLIM-32,QFT-32",
                     "--design", "ideal", "--runs", "1",
                     *SMALL_SYSTEM_FLAGS, "--quiet", "--out", str(out)]) == 0
        assert ResultSet.load(out).benchmarks() == ["TLIM-32", "QFT-32"]

    def test_flags_override_spec(self, tmp_path):
        spec = {"benchmarks": ["TLIM-32"], "designs": ["ideal"],
                "num_runs": 5,
                "system": {"data_qubits_per_node": 16,
                           "comm_qubits_per_node": 4,
                           "buffer_qubits_per_node": 4}}
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        out = tmp_path / "rs.json"
        main(["sweep", "--spec", str(spec_path), "--runs", "1", "--quiet",
              "--out", str(out)])
        assert len(ResultSet.load(out)) == 1

    def test_runs_flag_replaces_spec_seed_axis(self, tmp_path):
        spec = {"benchmarks": ["TLIM-32"], "designs": ["ideal"],
                "system": {"data_qubits_per_node": 16,
                           "comm_qubits_per_node": 4,
                           "buffer_qubits_per_node": 4},
                "axes": [{"fields": ["seed"], "values": [5, 6]}]}
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        out = tmp_path / "rs.json"
        main(["sweep", "--spec", str(spec_path), "--runs", "3", "--quiet",
              "--out", str(out)])
        results = ResultSet.load(out)
        assert len(results) == 3  # the flag wins over the spec's seed axis
        assert results.values("seed") == [1, 2, 3]

    def test_bad_spec_file_exits_nonzero(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"benchmarks": ["TLIM-32"],
                                         "warp": 9}))
        assert main(["sweep", "--spec", str(spec_path)]) == 2
        assert "unknown study spec keys" in capsys.readouterr().err


class TestStoreAndStatus:
    SWEEP = ["sweep", "--benchmark", "TLIM-32", "--design", "ideal",
             "--design", "original", "--runs", "4", *SMALL_SYSTEM_FLAGS]

    def test_interrupt_resume_status_roundtrip(self, tmp_path, capsys):
        store = str(tmp_path / "st")
        baseline = tmp_path / "base.json"
        resumed = tmp_path / "resumed.json"
        assert main([*self.SWEEP, "--quiet", "--out", str(baseline)]) == 0
        # Interrupted invocation: two chunks, then stop (exit 0, store kept).
        assert main([*self.SWEEP, "--store", store, "--store-chunk-size", "2",
                     "--max-chunks", "2", "--quiet"]) == 0
        assert "re-run the same command to resume" in capsys.readouterr().err
        assert main(["status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "in progress" in out and "2/4" in out
        # Resume completes and matches the uninterrupted baseline exactly.
        assert main([*self.SWEEP, "--store", store, "--quiet",
                     "--out", str(resumed)]) == 0
        assert resumed.read_bytes() == baseline.read_bytes()
        assert main(["status", "--store", store, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["complete"] is True
        assert summary["done_chunks"] == summary["total_chunks"] == 4

    def test_json_progress_lines(self, tmp_path, capsys):
        store = str(tmp_path / "st")
        assert main([*self.SWEEP, "--store", store, "--store-chunk-size", "2",
                     "--json-progress"]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
        assert all(line["event"] == "progress" for line in lines)
        assert lines[-1]["complete"] is True
        assert lines[-1]["done_tasks"] == 8

    def test_resume_requires_existing_store(self, tmp_path, capsys):
        assert main([*self.SWEEP, "--store", str(tmp_path / "missing"),
                     "--resume", "--quiet"]) == 2
        assert "holds no started study" in capsys.readouterr().err
        assert main([*self.SWEEP, "--resume", "--quiet"]) == 2
        assert "--resume needs --store" in capsys.readouterr().err

    def test_status_on_missing_store_fails(self, tmp_path, capsys):
        assert main(["status", "--store", str(tmp_path / "nope")]) == 2
        assert "not a run store" in capsys.readouterr().err

    def test_mismatched_store_reported(self, tmp_path, capsys):
        store = str(tmp_path / "st")
        assert main([*self.SWEEP, "--store", store, "--quiet"]) == 0
        assert main(["run", "--benchmark", "QFT-32", "--design", "ideal",
                     "--runs", "1", *SMALL_SYSTEM_FLAGS,
                     "--store", store, "--quiet"]) == 2
        assert "different study" in capsys.readouterr().err


class TestListCommands:
    def test_list_benchmarks(self, capsys):
        assert main(["list-benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "TLIM-32" in out and "QAOA-r8-64" in out
        assert "QAOA-r4-16" in out  # family hint

    def test_list_designs(self, capsys):
        assert main(["list-designs"]) == 0
        out = capsys.readouterr().out
        for design in ("original", "sync_buf", "async_buf", "adapt_buf",
                       "init_buf", "ideal"):
            assert design in out

    def test_list_partitioners(self, capsys):
        assert main(["list-partitioners"]) == 0
        out = capsys.readouterr().out
        for name in ("multilevel", "kernighan_lin", "fiduccia_mattheyses",
                     "spectral", "precomputed"):
            assert name in out
        assert "kl = kernighan_lin" in out  # alias hint

    def test_list_topologies(self, capsys):
        assert main(["list-topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("all_to_all", "line", "ring", "star"):
            assert name in out
        assert "grid-RxC" in out  # family hint


class TestPartitionerTopologyAxes:
    def test_sweep_partitioner_by_topology_grid(self, tmp_path):
        out = tmp_path / "grid.json"
        code = main(["sweep", "--benchmark", "QAOA-r4-16",
                     "--design", "adapt_buf", "--runs", "1",
                     *SMALL_SYSTEM_FLAGS,
                     "--axis", "partition_method=multilevel,spectral",
                     "--axis", "topology=all_to_all,ring",
                     "--quiet", "--out", str(out)])
        assert code == 0
        results = ResultSet.load(out)
        assert len(results) == 4
        assert sorted(results.group_by("partition_method")) == [
            "multilevel", "spectral"]
        assert sorted(results.group_by("topology")) == ["all_to_all", "ring"]

    def test_partition_method_and_topology_flags(self, tmp_path):
        out = tmp_path / "rs.json"
        code = main(["run", "--benchmark", "TLIM-32", "--design", "ideal",
                     "--runs", "1", *SMALL_SYSTEM_FLAGS,
                     "--partition-method", "contiguous",
                     "--topology", "ring", "--quiet", "--out", str(out)])
        assert code == 0
        assert len(ResultSet.load(out)) == 1

    def test_unknown_partition_method_exits_nonzero(self, capsys):
        code = main(["run", "--benchmark", "TLIM-32", "--runs", "1",
                     "--partition-method", "metis"])
        assert code == 2
        assert "unknown partitioning method" in capsys.readouterr().err

    def test_unknown_topology_exits_nonzero(self, capsys):
        code = main(["run", "--benchmark", "TLIM-32", "--runs", "1",
                     "--topology", "torus"])
        assert code == 2
        assert "unknown topology" in capsys.readouterr().err

    def test_unlinked_topology_partition_reported(self, capsys):
        # A 4-node ring cannot serve QAOA's multilevel partition (diagonal
        # remote pairs); the CLI surfaces the compile-time topology error.
        code = main(["sweep", "--benchmark", "QAOA-r4-32",
                     "--design", "adapt_buf", "--runs", "1",
                     "--nodes", "4", "--topology", "ring"])
        assert code == 2
        assert "unlinked node pair" in capsys.readouterr().err
