"""Unit tests for the weighted qubit-interaction graph."""

import numpy as np
import pytest

from repro.benchmarks import qft_circuit, tlim_circuit
from repro.circuits import QuantumCircuit
from repro.partitioning import InteractionGraph
from repro.exceptions import PartitionError


class TestConstruction:
    def test_from_circuit_weights(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        circuit.cz(1, 2)
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.weight(0, 1) == 2.0
        assert graph.weight(1, 2) == 1.0
        assert graph.weight(0, 2) == 0.0
        assert graph.num_edges == 2
        assert graph.total_edge_weight == 3.0

    def test_single_qubit_gates_ignored(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.rz(0.3, 1)
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.num_edges == 0

    def test_from_edges(self):
        graph = InteractionGraph.from_edges(4, [(0, 1), (1, 0), (2, 3)])
        assert graph.weight(0, 1) == 2.0
        assert graph.weight(2, 3) == 1.0

    def test_invalid_edges_rejected(self):
        with pytest.raises(PartitionError):
            InteractionGraph(3, {(0, 0): 1.0})
        with pytest.raises(PartitionError):
            InteractionGraph(3, {(0, 5): 1.0})
        with pytest.raises(PartitionError):
            InteractionGraph(3, {(0, 1): -1.0})

    def test_default_vertex_weights(self):
        graph = InteractionGraph(4)
        assert graph.total_vertex_weight == 4.0


class TestQueries:
    def test_neighbors_and_degree(self):
        graph = InteractionGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.neighbors(0) == {1: 1.0, 2: 1.0, 3: 1.0}
        assert graph.degree(0) == 3.0
        assert graph.degree(1) == 1.0

    def test_cut_weight(self):
        graph = InteractionGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        assert graph.cut_weight(assignment) == 1.0

    def test_block_weights(self):
        graph = InteractionGraph(4)
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        assert graph.block_weights(assignment) == {0: 2.0, 1: 2.0}

    def test_to_networkx(self):
        graph = InteractionGraph.from_edges(5, [(0, 1), (2, 3)])
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 5
        assert nx_graph.number_of_edges() == 2

    def test_laplacian_row_sums_zero(self):
        circuit = tlim_circuit(6, num_steps=1)
        graph = InteractionGraph.from_circuit(circuit)
        laplacian = graph.laplacian()
        assert np.allclose(laplacian.sum(axis=1), 0.0)
        assert np.allclose(laplacian, laplacian.T)

    def test_subgraph(self):
        graph = InteractionGraph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        sub, back = graph.subgraph({0, 1, 2})
        assert sub.num_vertices == 3
        assert sub.total_edge_weight == 2.0
        assert sorted(back.values()) == [0, 1, 2]

    def test_qft_graph_is_complete(self):
        graph = InteractionGraph.from_circuit(qft_circuit(6))
        assert graph.num_edges == 15
