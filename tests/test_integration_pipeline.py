"""Integration tests: full pipeline end-to-end and paper-shape assertions.

These tests run the complete co-design flow (benchmark -> partition ->
schedule -> execute -> estimate) on scaled-down systems and check the
qualitative findings of the paper's evaluation:

* buffering reduces depth dramatically compared to the ``original`` design,
* asynchronous generation does not lose to synchronous generation (and its
  fidelity is at least as good),
* adaptive scheduling does not hurt, and pre-initialised buffers give the
  lowest depth of the buffered designs,
* the ideal (monolithic) execution lower-bounds depth and upper-bounds
  fidelity.
"""

import statistics

import pytest

from repro.benchmarks import qaoa_regular_circuit, qft_circuit, tlim_circuit
from repro.core import DQCSimulator, SystemConfig
from repro.partitioning import distribute_circuit
from repro.runtime import execute_design, list_designs


def average_metrics(simulator, circuit, design, seeds):
    results = [simulator.simulate(circuit, design=design, seed=s) for s in seeds]
    return (
        statistics.mean(r.depth for r in results),
        statistics.mean(r.fidelity for r in results),
    )


@pytest.fixture(scope="module")
def mid_simulator():
    system = SystemConfig(data_qubits_per_node=8, comm_qubits_per_node=6,
                          buffer_qubits_per_node=6)
    return DQCSimulator(system=system)


@pytest.fixture(scope="module")
def workloads():
    return {
        "tlim": tlim_circuit(16, num_steps=3),
        "qaoa": qaoa_regular_circuit(16, 4, layers=1, seed=5),
        "qft": qft_circuit(12),
    }


SEEDS = range(1, 6)


class TestDesignOrderingAcrossWorkloads:
    @pytest.mark.parametrize("workload", ["tlim", "qaoa", "qft"])
    def test_buffering_reduces_depth(self, mid_simulator, workloads, workload):
        circuit = workloads[workload]
        original_depth, _ = average_metrics(mid_simulator, circuit, "original", SEEDS)
        buffered_depth, _ = average_metrics(mid_simulator, circuit, "async_buf", SEEDS)
        assert buffered_depth < original_depth
        # The paper reports ~60% average reduction; require a sizeable one for
        # the remote-heavy workloads.
        if workload == "qft":
            assert buffered_depth < 0.6 * original_depth

    @pytest.mark.parametrize("workload", ["tlim", "qaoa", "qft"])
    def test_ideal_bounds(self, mid_simulator, workloads, workload):
        circuit = workloads[workload]
        ideal_depth, ideal_fidelity = average_metrics(
            mid_simulator, circuit, "ideal", [1]
        )
        for design in ("original", "sync_buf", "async_buf", "adapt_buf", "init_buf"):
            depth, fidelity = average_metrics(mid_simulator, circuit, design, SEEDS)
            # Adaptive designs may dip marginally below the fixed-order ideal
            # baseline by shortening the dependency critical path through
            # commutation; allow a small tolerance for that effect.
            assert depth >= ideal_depth * 0.95
            assert fidelity <= ideal_fidelity + 1e-6

    @pytest.mark.parametrize("workload", ["qaoa", "qft"])
    def test_async_fidelity_not_worse_than_sync(self, mid_simulator, workloads,
                                                workload):
        circuit = workloads[workload]
        _, sync_fidelity = average_metrics(mid_simulator, circuit, "sync_buf", SEEDS)
        _, async_fidelity = average_metrics(mid_simulator, circuit, "async_buf", SEEDS)
        assert async_fidelity >= sync_fidelity * 0.98

    @pytest.mark.parametrize("workload", ["tlim", "qaoa"])
    def test_async_depth_not_worse_than_sync(self, mid_simulator, workloads, workload):
        circuit = workloads[workload]
        sync_depth, _ = average_metrics(mid_simulator, circuit, "sync_buf", SEEDS)
        async_depth, _ = average_metrics(mid_simulator, circuit, "async_buf", SEEDS)
        assert async_depth <= sync_depth * 1.05

    @pytest.mark.parametrize("workload", ["qaoa", "qft"])
    def test_adaptive_not_worse_than_async(self, mid_simulator, workloads, workload):
        circuit = workloads[workload]
        async_depth, _ = average_metrics(mid_simulator, circuit, "async_buf", SEEDS)
        adapt_depth, _ = average_metrics(mid_simulator, circuit, "adapt_buf", SEEDS)
        assert adapt_depth <= async_depth * 1.05

    @pytest.mark.parametrize("workload", ["tlim", "qaoa", "qft"])
    def test_init_buf_has_lowest_buffered_depth(self, mid_simulator, workloads,
                                                workload):
        circuit = workloads[workload]
        init_depth, _ = average_metrics(mid_simulator, circuit, "init_buf", SEEDS)
        for design in ("sync_buf", "async_buf", "adapt_buf"):
            depth, _ = average_metrics(mid_simulator, circuit, design, SEEDS)
            assert init_depth <= depth * 1.02


class TestCommQubitScaling:
    def test_more_comm_qubits_reduce_depth(self):
        circuit = qaoa_regular_circuit(16, 8, layers=1, seed=4)
        depths = {}
        for count in (3, 6, 10):
            system = SystemConfig(data_qubits_per_node=8,
                                  comm_qubits_per_node=count,
                                  buffer_qubits_per_node=count)
            simulator = DQCSimulator(system=system)
            depths[count], _ = average_metrics(simulator, circuit, "async_buf", SEEDS)
        assert depths[10] <= depths[6] <= depths[3] * 1.02

    def test_fidelity_insensitive_to_comm_count(self):
        circuit = qaoa_regular_circuit(16, 8, layers=1, seed=4)
        fidelities = []
        for count in (6, 10):
            system = SystemConfig(data_qubits_per_node=8,
                                  comm_qubits_per_node=count,
                                  buffer_qubits_per_node=count)
            simulator = DQCSimulator(system=system)
            _, fidelity = average_metrics(simulator, circuit, "adapt_buf", SEEDS)
            fidelities.append(fidelity)
        assert fidelities[1] == pytest.approx(fidelities[0], rel=0.25)


class TestEndToEndConsistency:
    def test_all_designs_run_on_all_small_benchmarks(self, mid_simulator, workloads):
        for circuit in workloads.values():
            results = mid_simulator.simulate_all_designs(circuit, seed=2)
            assert set(results) == set(list_designs())
            for result in results.values():
                assert result.depth > 0
                assert 0 <= result.fidelity <= 1

    def test_remote_gate_count_independent_of_design(self, mid_simulator, workloads):
        circuit = workloads["qft"]
        program = mid_simulator.prepare(circuit)
        expected = program.remote_gate_count()
        for design in ("original", "sync_buf", "async_buf", "adapt_buf", "init_buf"):
            result = mid_simulator.simulate(program, design=design, seed=7)
            assert result.num_remote == expected

    def test_direct_executor_matches_simulator(self, workloads):
        system = SystemConfig(data_qubits_per_node=8, comm_qubits_per_node=6,
                              buffer_qubits_per_node=6)
        simulator = DQCSimulator(system=system)
        program = simulator.prepare(workloads["tlim"])
        via_simulator = simulator.simulate(program, design="sync_buf", seed=11)
        via_executor = execute_design(program, system.build_architecture(),
                                      "sync_buf", seed=11)
        assert via_simulator.depth == pytest.approx(via_executor.depth)
        assert via_simulator.fidelity == pytest.approx(via_executor.fidelity)

    def test_waste_is_higher_without_buffer(self, mid_simulator, workloads):
        circuit = workloads["qft"]
        original = mid_simulator.simulate(circuit, design="original", seed=3)
        buffered = mid_simulator.simulate(circuit, design="async_buf", seed=3)
        assert original.epr_waste_fraction() >= 0.0
        assert buffered.epr_statistics["consumed_from_buffer"] > 0
