"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.benchmarks import build_benchmark, qaoa_regular_circuit, tlim_circuit
from repro.circuits import QuantumCircuit
from repro.core import DQCSimulator, SystemConfig
from repro.hardware import two_node_architecture
from repro.partitioning import distribute_circuit


@pytest.fixture
def bell_circuit() -> QuantumCircuit:
    """Two-qubit Bell-pair preparation circuit."""
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


@pytest.fixture
def small_remote_circuit() -> QuantumCircuit:
    """Four-qubit circuit with a mix of local and remote-labelled gates."""
    circuit = QuantumCircuit(4, name="small-remote")
    circuit.h(0)
    circuit.h(2)
    circuit.cx(0, 1)
    circuit.add_gate("cx", (1, 2), label="remote")
    circuit.rz(0.3, 2)
    circuit.add_gate("rzz", (0, 3), (0.5,), label="remote")
    circuit.cx(2, 3)
    return circuit


@pytest.fixture
def tlim8():
    """Small TLIM chain used by fast integration tests."""
    return tlim_circuit(8, num_steps=2)


@pytest.fixture
def qaoa12():
    """Small QAOA instance used by fast integration tests."""
    return qaoa_regular_circuit(12, 4, layers=1, seed=3)


@pytest.fixture
def small_system() -> SystemConfig:
    """A 2-node, 12-data-qubit system that keeps simulations fast."""
    return SystemConfig(
        data_qubits_per_node=6,
        comm_qubits_per_node=4,
        buffer_qubits_per_node=4,
    )


@pytest.fixture
def small_simulator(small_system) -> DQCSimulator:
    """Simulator over the small system."""
    return DQCSimulator(system=small_system)


@pytest.fixture
def small_architecture(small_system):
    """Materialised architecture of the small system."""
    return small_system.build_architecture()


@pytest.fixture
def paper_architecture():
    """The paper's 2-node 32-data-qubit architecture."""
    return two_node_architecture()


@pytest.fixture
def distributed_qaoa12(qaoa12):
    """QAOA-12 partitioned over two nodes."""
    return distribute_circuit(qaoa12, num_nodes=2, seed=0)
