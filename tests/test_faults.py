"""Tests for the deterministic fault-injection framework.

The contract under test: a ``REPRO_FAULTS`` spec parses strictly (a
misspelled site or kind raises, never silently arms nothing), an
installed plan fires deterministically — same spec + same seed → the same
evaluations fire, independent of which other sites are armed — and with
no plan installed every failpoint is inert.  Around that sit the
kind-specific behaviours (``error`` raises an ``OSError`` with the
configured errno, ``crash`` exits with the SIGKILL code, ``drop``/
``torn`` actions are returned to the site), the wire-protocol failpoints
at frame granularity, and the chaos harness's schedule builder.
"""

import errno
import socket

import pytest

from repro.exceptions import ConfigurationError, FaultError, FleetError
from repro.faults import (
    CRASH_EXIT_CODE,
    SITES,
    InjectedFault,
    active_spec,
    crash_now,
    failpoint,
    fault_stats,
    faults_active,
    install_faults,
    install_faults_from_env,
    parse_faults,
    uninstall_faults,
)
from repro.faults import core as faults_core
from repro.faults.chaos import build_schedules
from repro.fleet import protocol


@pytest.fixture(autouse=True)
def inert_after_each():
    yield
    uninstall_faults()


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_site_defaults_apply(self):
        plan = parse_faults("store.fsync")
        action = plan.evaluate("store.fsync")
        assert action.kind == "error"
        assert action.errno == errno.ENOSPC

    def test_full_rule_parses(self):
        plan = parse_faults(
            "fleet.frame.send:kind=truncate,p=0.5,count=3,after=2")
        state = plan._states["fleet.frame.send"]
        assert (state.rule.kind, state.rule.p, state.rule.count,
                state.rule.after) == ("truncate", 0.5, 3, 2)

    def test_wildcard_arms_the_layer(self):
        plan = parse_faults("fleet.*")
        assert plan.sites() == sorted(
            name for name in SITES if name.startswith("fleet."))

    def test_multiple_rules_and_blank_chunks(self):
        plan = parse_faults("store.fsync:count=1; ;service.job.chunk")
        assert plan.sites() == ["service.job.chunk", "store.fsync"]

    def test_unknown_site_raises(self):
        with pytest.raises(FaultError, match="unknown fault site"):
            parse_faults("store.fsink")
        with pytest.raises(FaultError, match="matches no known site"):
            parse_faults("storage.*")

    def test_unknown_kind_raises(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            parse_faults("store.fsync:kind=explode")

    def test_unsupported_kind_for_site_raises(self):
        with pytest.raises(FaultError, match="does not support kind"):
            parse_faults("store.fsync:kind=torn")

    def test_malformed_parameter_raises(self):
        with pytest.raises(FaultError, match="expected key=value"):
            parse_faults("store.fsync:count")
        with pytest.raises(FaultError, match="unknown fault parameter"):
            parse_faults("store.fsync:chance=0.5")
        with pytest.raises(FaultError, match="malformed value"):
            parse_faults("store.fsync:count=lots")

    def test_probability_range_enforced(self):
        with pytest.raises(FaultError, match=r"\[0, 1\]"):
            parse_faults("fleet.frame.send:p=1.5")

    def test_duplicate_site_raises(self):
        with pytest.raises(FaultError, match="armed twice"):
            parse_faults("store.fsync;store.fsync:count=1")
        with pytest.raises(FaultError, match="armed twice"):
            parse_faults("store.fsync;store.*")

    def test_errno_symbolic_and_numeric(self):
        plan = parse_faults("store.fsync:errno=EIO")
        assert plan.evaluate("store.fsync").errno == errno.EIO
        plan = parse_faults(f"store.fsync:errno={errno.EDQUOT}")
        assert plan.evaluate("store.fsync").errno == errno.EDQUOT
        with pytest.raises(FaultError, match="unknown errno"):
            parse_faults("store.fsync:errno=ENOPE")

    def test_fault_error_is_a_configuration_error(self):
        assert issubclass(FaultError, ConfigurationError)


# ----------------------------------------------------------------------
# plan semantics: determinism, count, after, p
# ----------------------------------------------------------------------
class TestPlanSemantics:
    def test_count_disarms_after_n_fires(self):
        plan = parse_faults("store.fsync:count=2")
        fired = [plan.evaluate("store.fsync") is not None
                 for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_after_skips_leading_evaluations(self):
        plan = parse_faults("store.fsync:after=3,count=1")
        fired = [plan.evaluate("store.fsync") is not None
                 for _ in range(5)]
        assert fired == [False, False, False, True, False]

    def test_unarmed_site_never_fires(self):
        plan = parse_faults("store.fsync")
        assert plan.evaluate("fleet.frame.send") is None

    def test_same_seed_replays_exactly(self):
        pattern = []
        for s in (7, 7):
            plan = parse_faults("fleet.frame.send:p=0.3", seed=s)
            pattern.append([plan.evaluate("fleet.frame.send") is not None
                            for _ in range(64)])
        assert pattern[0] == pattern[1]
        assert any(pattern[0]) and not all(pattern[0])

    def test_fire_pattern_independent_of_other_armed_sites(self):
        alone = parse_faults("fleet.frame.send:p=0.3", seed=7)
        crowded = parse_faults(
            "fleet.frame.send:p=0.3;store.fsync:p=0.5;"
            "service.job.chunk:kind=delay,p=0.5,ms=0", seed=7)
        for _ in range(64):
            # Interleave draws at the other sites to try to perturb it.
            crowded.evaluate("store.fsync")
            assert (alone.evaluate("fleet.frame.send") is None) == \
                (crowded.evaluate("fleet.frame.send") is None)

    def test_stats_count_evaluations_and_fires(self):
        plan = parse_faults("store.fsync:count=1")
        for _ in range(3):
            plan.evaluate("store.fsync")
        assert plan.stats()["store.fsync"] == {
            "kind": "error", "evaluations": 3, "fires": 1}


# ----------------------------------------------------------------------
# the failpoint entry and the global plan
# ----------------------------------------------------------------------
class TestFailpoint:
    def test_inert_without_a_plan(self):
        assert not faults_active()
        assert failpoint("store.fsync") is None
        assert failpoint("not.even.a.site") is None
        assert fault_stats() == {}

    def test_error_kind_raises_injected_osError(self):
        install_faults("store.fsync:count=1")
        with pytest.raises(InjectedFault) as excinfo:
            failpoint("store.fsync")
        assert isinstance(excinfo.value, OSError)
        assert excinfo.value.errno == errno.ENOSPC
        assert excinfo.value.site == "store.fsync"
        assert failpoint("store.fsync") is None  # count exhausted

    def test_delay_kind_sleeps_and_continues(self):
        install_faults("service.job.chunk:kind=delay,ms=1,count=1")
        assert failpoint("service.job.chunk") is None

    def test_drop_action_returned_to_the_site(self):
        install_faults("fleet.frame.send:count=1")
        action = failpoint("fleet.frame.send")
        assert action.kind == "drop"

    def test_crash_kind_exits_with_sigkill_code(self, monkeypatch, capsys):
        codes = []
        monkeypatch.setattr(faults_core, "_exit", codes.append)
        install_faults("service.job.chunk:kind=crash,count=1")
        failpoint("service.job.chunk")
        assert codes == [CRASH_EXIT_CODE]
        assert "injected crash at service.job.chunk" in \
            capsys.readouterr().err

    def test_crash_now_uses_the_same_exit(self, monkeypatch):
        codes = []
        monkeypatch.setattr(faults_core, "_exit", codes.append)
        install_faults("service.journal.append:count=1")
        action = failpoint("service.journal.append")
        assert action.kind == "torn"
        crash_now(action)
        assert codes == [CRASH_EXIT_CODE]

    def test_install_and_uninstall(self):
        install_faults("store.fsync:count=1", seed=3)
        assert faults_active()
        assert active_spec() == "store.fsync:count=1"
        uninstall_faults()
        assert not faults_active()
        assert active_spec() is None

    def test_install_empty_clears(self):
        install_faults("store.fsync")
        assert install_faults(None) is None
        assert not faults_active()
        install_faults("store.fsync")
        assert install_faults("   ") is None
        assert not faults_active()

    def test_install_from_env(self):
        plan = install_faults_from_env(
            {"REPRO_FAULTS": "store.fsync:count=1",
             "REPRO_FAULTS_SEED": "11"})
        assert plan.seed == 11
        assert faults_active()

    def test_install_from_env_absent_is_inert(self):
        assert install_faults_from_env({}) is None

    def test_install_from_env_bad_seed_raises(self):
        with pytest.raises(FaultError, match="must be an integer"):
            install_faults_from_env(
                {"REPRO_FAULTS": "store.fsync",
                 "REPRO_FAULTS_SEED": "tuesday"})


# ----------------------------------------------------------------------
# wire-protocol failpoints at frame granularity
# ----------------------------------------------------------------------
class TestProtocolFailpoints:
    def test_dropped_frame_never_arrives(self):
        install_faults("fleet.frame.send:count=1")
        a, b = socket.socketpair()
        try:
            protocol.send_message(a, {"type": "hello", "n": 1})  # dropped
            protocol.send_message(a, {"type": "hello", "n": 2})
            assert protocol.recv_message(b)["n"] == 2
        finally:
            a.close()
            b.close()

    def test_truncated_frame_errors_after_partial_write(self):
        install_faults("fleet.frame.send:kind=truncate,count=1")
        a, b = socket.socketpair()
        try:
            with pytest.raises(InjectedFault):
                protocol.send_message(a, {"type": "hello"})
            a.close()
            # The peer sees a mid-frame EOF — the torn write is visible.
            with pytest.raises(FleetError, match="mid-frame"):
                protocol.recv_message(b)
        finally:
            b.close()

    def test_recv_failpoint_fails_the_read(self):
        install_faults("fleet.frame.recv:count=1")
        a, b = socket.socketpair()
        try:
            protocol.send_message(a, {"type": "hello"})
            with pytest.raises(InjectedFault):
                protocol.recv_message(b)
            assert protocol.recv_message(b)["type"] == "hello"
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# chaos schedule builder
# ----------------------------------------------------------------------
class TestChaosSchedules:
    def test_union_covers_the_whole_catalogue(self):
        plans = build_schedules(3, seed=9)
        covered = {site for plan in plans for site in plan["sites"]}
        assert covered == set(SITES)

    def test_schedules_are_deterministic(self):
        assert build_schedules(3, seed=9) == build_schedules(3, seed=9)
        assert build_schedules(3, seed=9) != build_schedules(3, seed=10)

    def test_every_rule_parses_and_is_count_limited(self):
        for plan in build_schedules(4, seed=1):
            for site, rule in plan["rules"].items():
                parsed = parse_faults(rule, seed=plan["seed"])
                assert parsed.sites() == [site]
                state = parsed._states[site]
                # Termination guarantee: probabilistic rules must carry a
                # fire cap, otherwise the soak could loop forever.
                assert state.rule.count is not None

    def test_placement_specs_partition_the_sites(self):
        for plan in build_schedules(2, seed=5):
            grouped = ";".join(spec for spec in plan["specs"].values()
                               if spec)
            assert parse_faults(grouped).sites() == plan["sites"]

    def test_zero_schedules_rejected(self):
        with pytest.raises(FaultError, match="at least one"):
            build_schedules(0, seed=1)
