"""Tests for the durable run store and resumable studies.

The contract under test is the tentpole guarantee: a study executed
against a store — including one interrupted and resumed across several
invocations — produces a ``ResultSet`` whose ``to_json`` text is byte
identical to the same study run uninterrupted in memory, and any
corruption of the durable state is detected loudly rather than silently
altering results.
"""

import errno
import json
from pathlib import Path

import pytest

from repro import Study, SystemConfig
from repro.analysis.report import load_results, store_status_report, summary_report
from repro.engine.backends import ExecutionBackend
from repro.exceptions import ConfigurationError, StoreError, StoreWriteError
from repro.faults import failpoint, install_faults, uninstall_faults
from repro.study import ResultSet, RunStore, aggregate_stream
from repro.study.store import DEFAULT_CHUNK_SIZE, StoreChunk, chunk_layout

SMALL = SystemConfig(data_qubits_per_node=16, comm_qubits_per_node=4,
                     buffer_qubits_per_node=4)


def small_study(**overrides):
    kwargs = dict(benchmarks=["TLIM-32"], designs=["ideal", "original"],
                  num_runs=4, system=SMALL)
    kwargs.update(overrides)
    return Study(**kwargs)


@pytest.fixture(scope="module")
def baseline_json():
    """The uninterrupted in-memory run every store variant must match."""
    with small_study() as study:
        return study.run().to_json()


def first_shard(store_dir: Path) -> Path:
    return sorted((store_dir / "shards").glob("*.jsonl"))[0]


# ----------------------------------------------------------------------
class TestChunkLayout:
    def test_chunks_cover_cells_in_order(self):
        layout = chunk_layout([5, 2], chunk_size=2)
        assert [(c.cell, c.start, c.count) for c in layout] == [
            (0, 0, 2), (0, 2, 2), (0, 4, 1), (1, 0, 2)]

    def test_chunk_ids_are_stable(self):
        assert StoreChunk(cell=3, start=64, count=32).id == "3:64"

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            chunk_layout([4], chunk_size=0)
        with pytest.raises(ConfigurationError):
            RunStore("anywhere", chunk_size=0)


class TestStoreLifecycle:
    def test_fresh_store_writes_manifest_and_chunk_log(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, store_chunk_size=2)
        manifest = json.loads((store / "manifest.json").read_text())
        assert manifest["schema"] == RunStore.SCHEMA_VERSION
        assert manifest["chunk_size"] == 2
        assert manifest["total_tasks"] == 8
        assert manifest["total_chunks"] == 4
        # Chunk commits live in the O(1) append-only log, not the manifest.
        log_lines = (store / "chunks.log").read_text().splitlines()
        assert len(log_lines) == 4
        assert all("sha256" in json.loads(line) for line in log_lines)

    def test_load_rejects_non_store_directory(self, tmp_path):
        with pytest.raises(StoreError, match="not a run store"):
            RunStore.load(tmp_path)

    def test_existing_store_keeps_committed_chunk_size(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, max_chunks=1, store_chunk_size=2)
        # A different requested size on resume must not shift the layout.
        with small_study() as study:
            study.run(store=store, store_chunk_size=3)
        assert RunStore.load(store).chunk_size == 2

    def test_mismatched_plan_rejected(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, max_chunks=1, store_chunk_size=2)
        with small_study(num_runs=5) as other:
            with pytest.raises(StoreError, match="different study"):
                other.run(store=store)

    def test_default_chunk_size(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store)
        assert RunStore.load(store).chunk_size == DEFAULT_CHUNK_SIZE

    def test_negative_max_chunks_rejected(self):
        with small_study() as study:
            with pytest.raises(ConfigurationError):
                study.run(max_chunks=-1)

    def test_concurrent_writer_rejected(self, tmp_path):
        store = tmp_path / "st"
        hijack_errors = []

        def hijack(event):
            # While the first study holds the writer lock, a second
            # invocation against the same store must fail fast instead of
            # interleaving appends.
            if event.done_chunks == 1 and not hijack_errors:
                with small_study() as other:
                    with pytest.raises(StoreError, match="locked"):
                        other.run(store=store)
                hijack_errors.append("raised")

        with small_study() as study:
            study.run(store=store, store_chunk_size=2, progress=hijack)
        assert hijack_errors == ["raised"]
        # The lock is released after the run: resuming works normally.
        with small_study() as study:
            study.run(store=store)


# ----------------------------------------------------------------------
class TestStaleLockTakeover:
    """A held flock whose recorded holder PID is dead is broken, not obeyed.

    The scenario is a flock surviving on an inherited file descriptor (a
    forked pool worker outliving the driver): the lock is genuinely held
    at the fcntl level, but the advertised holder is gone.
    """

    @staticmethod
    def _hold_lock(store: Path, holder_pid: int):
        """Flock the store's lock file on a private fd and write a PID."""
        import fcntl

        handle = open(store / "lock", "a+")
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        handle.truncate(0)
        handle.write(str(holder_pid))
        handle.flush()
        return handle  # keep open: closing would drop the flock

    @staticmethod
    def _dead_pid() -> int:
        import subprocess
        import sys

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_live_holder_still_rejected(self, tmp_path):
        import os

        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, store_chunk_size=2, max_chunks=1)
        handle = self._hold_lock(store, os.getpid())
        try:
            with small_study() as study:
                with pytest.raises(StoreError,
                                   match=f"PID {os.getpid()}"):
                    study.run(store=store)
        finally:
            handle.close()

    def test_dead_holder_is_taken_over(self, tmp_path, baseline_json):
        import os

        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, store_chunk_size=2, max_chunks=1)
        handle = self._hold_lock(store, self._dead_pid())
        try:
            # The flock is *held* (on the old inode) but its holder is
            # dead: the resume breaks the lock and finishes the study.
            with small_study() as study:
                results = study.run(store=store, store_chunk_size=2)
            assert results.to_json() == baseline_json
            # The fresh lock file now advertises the new writer.
            assert (store / "lock").read_text().strip() == str(os.getpid())
        finally:
            handle.close()

    def test_unparseable_holder_counts_as_alive(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, store_chunk_size=2, max_chunks=1)
        handle = self._hold_lock(store, 0)  # then scribble garbage
        handle.truncate(0)
        handle.write("not-a-pid")
        handle.flush()
        try:
            with small_study() as study:
                with pytest.raises(StoreError, match="locked"):
                    study.run(store=store)
        finally:
            handle.close()


# ----------------------------------------------------------------------
class TestResumeBitIdentity:
    def test_store_run_matches_in_memory(self, tmp_path, baseline_json):
        with small_study() as study:
            results = study.run(store=tmp_path / "st", store_chunk_size=2)
        assert results.to_json() == baseline_json

    def test_interrupt_and_resume_matches_uninterrupted(
            self, tmp_path, baseline_json):
        store = tmp_path / "st"
        # Fresh Study objects per invocation, as separate processes would be.
        with small_study() as study:
            partial = study.run(store=store, max_chunks=1, store_chunk_size=2)
        assert len(partial) == 2  # only the first chunk is complete
        with small_study() as study:
            resumed = study.run(store=store)
        assert resumed.to_json() == baseline_json
        assert ResultSet.from_store(store).to_json() == baseline_json

    def test_crash_mid_chunk_leaves_resumable_store(
            self, tmp_path, baseline_json):
        store = tmp_path / "st"

        class Interrupted(RuntimeError):
            pass

        def bomb(event):
            # Let the initial event and two chunk commits through, then die
            # the way a kill signal would — after durable commits, before
            # the study finishes.
            if event.done_chunks >= 2:
                raise Interrupted()

        with small_study() as study:
            with pytest.raises(Interrupted):
                study.run(store=store, store_chunk_size=2, progress=bomb)
        assert len(RunStore.load(store).completed_ids()) >= 2
        with small_study() as study:
            resumed = study.run(store=store)
        assert resumed.to_json() == baseline_json

    def test_orphaned_shard_tail_is_discarded(self, tmp_path, baseline_json):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, max_chunks=2, store_chunk_size=2)
        # A kill between the shard append and the manifest commit leaves a
        # partial line past the committed range; resume must discard it.
        with open(first_shard(store), "ab") as handle:
            handle.write(b'{"benchmark": "TLIM-32", "trunca')
        with small_study() as study:
            resumed = study.run(store=store)
        assert resumed.to_json() == baseline_json

    def test_completed_store_resume_executes_nothing(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, store_chunk_size=2)
        events = []
        with small_study() as study:
            study.run(store=store, progress=events.append)
        assert all(e.resumed_chunks == e.total_chunks for e in events)
        assert all(e.executed_tasks == 0 for e in events)

    def test_max_chunks_zero_loads_without_executing(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, max_chunks=1, store_chunk_size=2)
        with small_study() as study:
            loaded = study.run(store=store, max_chunks=0)
        assert len(loaded) == 2

    def test_swept_params_round_trip(self, tmp_path):
        def sweep():
            return small_study(
                designs=["ideal"],
                axes={"epr_success_probability": [0.2, 0.8]})

        with sweep() as study:
            expected = study.run().to_json()
        store = tmp_path / "st"
        with sweep() as study:
            study.run(store=store, max_chunks=1, store_chunk_size=2)
        with sweep() as study:
            assert study.run(store=store).to_json() == expected
        reloaded = ResultSet.from_store(store)
        assert reloaded.values("epr_success_probability") == [
            0.2, 0.2, 0.2, 0.2, 0.8, 0.8, 0.8, 0.8]


# ----------------------------------------------------------------------
class TestCorruptionDetection:
    def _complete_store(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, store_chunk_size=2)
        return store

    def test_flipped_byte_fails_checksum(self, tmp_path):
        store = self._complete_store(tmp_path)
        shard = first_shard(store)
        data = bytearray(shard.read_bytes())
        data[10] ^= 0xFF
        shard.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="checksum"):
            ResultSet.from_store(store)

    def test_truncated_shard_rejected_on_resume(self, tmp_path):
        store = self._complete_store(tmp_path)
        shard = first_shard(store)
        shard.write_bytes(shard.read_bytes()[:5])
        with small_study() as study:
            with pytest.raises(StoreError, match="corrupt"):
                study.run(store=store)

    def test_missing_shard_rejected(self, tmp_path):
        store = self._complete_store(tmp_path)
        first_shard(store).unlink()
        with small_study() as study:
            with pytest.raises(StoreError, match="corrupt|missing"):
                study.run(store=store)

    def test_partial_store_load_refused_by_default(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, max_chunks=1, store_chunk_size=2)
        with pytest.raises(StoreError, match="incomplete"):
            ResultSet.from_store(store)
        assert len(ResultSet.from_store(store, allow_partial=True)) == 2

    def test_garbage_manifest_rejected(self, tmp_path):
        store = tmp_path / "st"
        store.mkdir()
        (store / "manifest.json").write_text("{not json")
        with pytest.raises(StoreError, match="cannot read store manifest"):
            RunStore.load(store)


# ----------------------------------------------------------------------
class TestStreamingAggregation:
    def test_matches_in_memory_aggregate(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            results = study.run(store=store, store_chunk_size=2)
        loaded = RunStore.load(store)
        for by in ("design", ["benchmark", "design"], ()):
            assert (aggregate_stream(loaded.iter_records(), "depth", by=by)
                    == results.aggregate("depth", by=by))
        assert (aggregate_stream(loaded.iter_records(), "fidelity",
                                 by="design")
                == results.aggregate("fidelity", by="design"))

    def test_empty_stream_raises_like_aggregate(self):
        with pytest.raises(ConfigurationError):
            aggregate_stream(iter(()), "depth")


# ----------------------------------------------------------------------
class TestProgressEvents:
    def test_events_are_monotonic_and_complete(self, tmp_path):
        events = []
        with small_study() as study:
            study.run(store=tmp_path / "st", store_chunk_size=2,
                      progress=events.append)
        assert events[0].done_chunks == 0  # the initial resume-point event
        done = [e.done_chunks for e in events]
        assert done == sorted(done)
        assert events[-1].complete
        assert events[-1].done_tasks == events[-1].total_tasks == 8
        payload = events[-1].to_dict()
        assert payload["event"] == "progress"
        assert payload["complete"] is True

    def test_progress_without_store(self):
        events = []
        with small_study() as study:
            results = study.run(progress=events.append, store_chunk_size=2)
        assert len(results) == 8
        assert events[-1].complete


# ----------------------------------------------------------------------
class _LegacySignatureBackend(ExecutionBackend):
    """A pre-streaming backend: ``execute`` does not accept a sink."""

    name = "legacy-signature"

    def execute(self, tasks):  # noqa: D102 - intentionally sink-less
        results = []
        for task in tasks:
            results.append(task.run())
        return results


class TestSinklessBackendFallback:
    def test_store_still_completes(self, tmp_path, baseline_json):
        store = tmp_path / "st"
        with small_study(backend=_LegacySignatureBackend()) as study:
            results = study.run(store=store, store_chunk_size=2)
        assert results.to_json() == baseline_json
        assert RunStore.load(store).is_complete


# ----------------------------------------------------------------------
class TestReportsAcceptStores:
    def test_load_results_from_store_dir_and_json(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            results = study.run(store=store, store_chunk_size=2)
        out = tmp_path / "rs.json"
        results.to_json(out)
        assert load_results(store) == results
        assert load_results(out) == results
        assert load_results(results) is results

    def test_summary_report_from_store(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            results = study.run(store=store, store_chunk_size=2)
        assert summary_report(store) == summary_report(results)
        assert "mean depth" in summary_report(store)

    def test_store_status_report(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, max_chunks=1, store_chunk_size=2)
        text = store_status_report(store)
        assert "in progress" in text
        assert "1/4" in text  # chunks
        assert "TLIM-32" in text
        with small_study() as study:
            study.run(store=store)
        assert "complete" in store_status_report(store)


# ----------------------------------------------------------------------
# Injected write failures: the store must fail loudly, keep committed
# chunks durable, and resume byte-identically after a reopen.
# ----------------------------------------------------------------------
class TestInjectedWriteFailures:
    @pytest.fixture(autouse=True)
    def inert_faults(self):
        yield
        uninstall_faults()

    def test_enospc_on_fsync_reports_committed_state(self, tmp_path,
                                                     baseline_json):
        store = tmp_path / "st"
        install_faults("store.fsync:errno=ENOSPC,after=2,count=1")
        with small_study() as study:
            with pytest.raises(StoreWriteError) as excinfo:
                study.run(store=store, store_chunk_size=2)
        error = excinfo.value
        assert error.errno == errno.ENOSPC
        assert error.committed_chunks >= 1
        assert error.committed_runs >= 2
        assert "remain durable" in str(error)
        assert isinstance(error, StoreError)
        uninstall_faults()
        # The durable prefix survives and the rerun completes the study.
        reopened = RunStore.load(store)
        assert len(reopened.completed_ids()) == error.committed_chunks
        reopened.release()
        with small_study() as study:
            assert study.run(store=store).to_json() == baseline_json

    def test_torn_shard_append_is_repaired_on_resume(self, tmp_path,
                                                     baseline_json):
        store = tmp_path / "st"
        install_faults("store.shard.write:kind=torn,after=1,count=1")
        with small_study() as study:
            with pytest.raises(StoreWriteError):
                study.run(store=store, store_chunk_size=2)
        uninstall_faults()
        # The shard file carries a torn half-chunk past the committed
        # prefix; reopening must not surface it as results.
        with small_study() as study:
            assert study.run(store=store).to_json() == baseline_json

    def test_torn_log_append_is_repaired_on_resume(self, tmp_path,
                                                   baseline_json):
        store = tmp_path / "st"
        install_faults("store.log.append:kind=torn,after=1,count=1")
        with small_study() as study:
            with pytest.raises(StoreWriteError):
                study.run(store=store, store_chunk_size=2)
        uninstall_faults()
        with small_study() as study:
            assert study.run(store=store).to_json() == baseline_json

    def test_unset_env_means_no_failpoints(self, tmp_path, baseline_json):
        assert failpoint("store.fsync") is None
        store = tmp_path / "st"
        with small_study() as study:
            assert study.run(store=store).to_json() == baseline_json
