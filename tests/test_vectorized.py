"""Cross-seed vectorized core: equivalence with both scalar cores.

The contract of this PR: the :class:`VectorizedExecutor` simulates a whole
seed batch per gate-stream pass on 2-D numpy state, yet for identical
seeds produces :class:`ExecutionResult`s *bit-identical* to both the
trajectory-batched :class:`BatchedExecutor` and the legacy
:class:`DesignExecutor` — every field, including remote-gate records,
fidelity breakdowns, entanglement statistics, and adaptive variant
histograms.  These tests pin that contract across all six designs, across
topologies, through the adaptive per-seed group-split path, and through the
``REPRO_EXEC=vector`` mode knob.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import SystemConfig
from repro.engine import CellCompiler
from repro.runtime import (
    EntanglementDirectoryBatch,
    VectorizedExecutor,
    execute_vectorized,
    execution_mode,
    list_designs,
)
from repro.runtime.execmode import BATCHED, EXEC_ENV_VAR, VECTOR

SEEDS = [1, 2, 3]


def _assert_identical(reference_results, vector_results):
    assert len(reference_results) == len(vector_results)
    for reference, candidate in zip(reference_results, vector_results):
        assert candidate.seed == reference.seed
        assert candidate.makespan == reference.makespan
        assert candidate.fidelity == reference.fidelity
        assert candidate.fidelity_breakdown == reference.fidelity_breakdown
        assert candidate.qubit_idle_total == reference.qubit_idle_total
        assert candidate.remote_records == reference.remote_records
        assert candidate.epr_statistics == reference.epr_statistics
        assert candidate.variant_histogram == reference.variant_histogram
        # Full dataclass equality last: catches any field the above missed.
        assert candidate == reference


# ---------------------------------------------------------------------------
# equivalence across the whole design / benchmark grid
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("design", list_designs())
@pytest.mark.parametrize("benchmark_name", ["TLIM-16", "QAOA-r2-16"])
def test_vector_equals_batched_and_legacy_all_designs(benchmark_name, design):
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile(benchmark_name, design)
    vector = cell.execute_batch(SEEDS, mode="vector")
    _assert_identical(cell.execute_batch(SEEDS, mode="batched"), vector)
    _assert_identical(cell.execute_batch(SEEDS, mode="legacy"), vector)


@pytest.mark.parametrize("topology,partition_method", [
    ("all_to_all", "multilevel"),
    ("ring", "multilevel"),
    ("line", "contiguous"),
])
def test_vector_equals_batched_across_topologies(topology, partition_method):
    system = SystemConfig(num_nodes=4, data_qubits_per_node=8,
                          comm_qubits_per_node=8, buffer_qubits_per_node=8,
                          topology=topology, partition_method=partition_method)
    compiler = CellCompiler(system=system)
    for design in ("original", "async_buf", "adapt_buf"):
        cell = compiler.compile("TLIM-32", design)
        _assert_identical(cell.execute_batch(SEEDS, mode="batched"),
                          cell.execute_batch(SEEDS, mode="vector"))


# ---------------------------------------------------------------------------
# the adaptive group-split path
# ---------------------------------------------------------------------------
def test_vector_adaptive_seeds_genuinely_diverge():
    """The equivalence only means something if seeds pick different variants.

    On the 4-node system the adaptive design's per-seed lookup decisions
    split the batch into divergent variant groups, exercising the
    vectorized core's group-replay path rather than the uniform fast path.
    """
    system = SystemConfig(num_nodes=4, data_qubits_per_node=8,
                          comm_qubits_per_node=8, buffer_qubits_per_node=8)
    compiler = CellCompiler(system=system)
    cell = compiler.compile("TLIM-32", "adapt_buf")
    seeds = list(range(1, 13))
    vector = cell.execute_batch(seeds, mode="vector")
    histograms = {tuple(sorted(r.variant_histogram.items())) for r in vector}
    assert len(histograms) > 1
    _assert_identical(cell.execute_batch(seeds, mode="batched"), vector)
    _assert_identical(cell.execute_batch(seeds, mode="legacy"), vector)


def test_vector_adaptive_keeps_shared_lookup_log_clean():
    """Group replay must not leak per-seed decisions into the shared table."""
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("QAOA-r2-16", "adapt_buf")
    assert cell.lookup is not None
    cell.execute_batch(SEEDS, mode="vector")
    assert cell.lookup.decisions == []


# ---------------------------------------------------------------------------
# standalone executor surface
# ---------------------------------------------------------------------------
def test_vector_standalone_without_prebuilt_streams():
    """VectorizedExecutor lowers on the fly when no compile artifacts exist."""
    from repro.benchmarks.registry import build_benchmark
    from repro.partitioning.assigner import distribute_circuit
    from repro.runtime import BatchedExecutor

    system = SystemConfig()
    architecture = system.build_architecture()
    program = distribute_circuit(build_benchmark("TLIM-16"), num_nodes=2)
    for design in ("async_buf", "adapt_buf", "ideal"):
        batched = BatchedExecutor(architecture, design).run_batch(
            program, SEEDS)
        vector = VectorizedExecutor(architecture, design).run_batch(
            program, SEEDS)
        _assert_identical(batched, vector)


def test_execute_vectorized_convenience():
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("TLIM-16", "original")
    results = execute_vectorized(
        cell.program, cell.architecture, cell.design, SEEDS)
    _assert_identical(cell.execute_batch(SEEDS, mode="batched"), results)


def test_vector_empty_seed_batch():
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("TLIM-16", "original")
    assert cell.execute_batch([], mode="vector") == []


def test_vector_single_seed():
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("QAOA-r2-16", "sync_buf")
    _assert_identical(cell.execute_batch([7], mode="batched"),
                      cell.execute_batch([7], mode="vector"))


# ---------------------------------------------------------------------------
# mode selection
# ---------------------------------------------------------------------------
def test_execution_mode_env_selects_vector(monkeypatch):
    monkeypatch.setenv(EXEC_ENV_VAR, "vector")
    assert execution_mode() == VECTOR
    monkeypatch.delenv(EXEC_ENV_VAR)
    assert execution_mode() == BATCHED
    assert execution_mode("vector") == VECTOR


def test_execute_batch_honours_vector_env(monkeypatch):
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("TLIM-16", "async_buf")
    expected = cell.execute_batch(SEEDS, mode="batched")
    monkeypatch.setenv(EXEC_ENV_VAR, "vector")
    _assert_identical(expected, cell.execute_batch(SEEDS))


# ---------------------------------------------------------------------------
# the batched entanglement directory
# ---------------------------------------------------------------------------
def test_directory_batch_matches_scalar_directories():
    from repro.runtime.resources import EntanglementDirectory

    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("TLIM-16", "async_buf")
    pair_list = cell.streams.pair_list
    assert pair_list, "TLIM-16 must produce at least one remote pair"
    spec = cell.design
    batch = EntanglementDirectoryBatch(
        cell.architecture, SEEDS, pair_list,
        attempt_policy=spec.attempt_policy, use_buffer=spec.use_buffer,
        prefill=spec.prefill_buffers, buffer_cutoff=spec.buffer_cutoff,
        async_groups=spec.async_groups,
    )
    scalars = [
        EntanglementDirectory(
            cell.architecture, seed=seed,
            attempt_policy=spec.attempt_policy, use_buffer=spec.use_buffer,
            prefill=spec.prefill_buffers, buffer_cutoff=spec.buffer_cutoff,
            async_groups=spec.async_groups,
        )
        for seed in SEEDS
    ]
    starts, created, fidelities = batch.acquire_batch(
        0, [0.0 for _ in SEEDS])
    node_a, node_b = pair_list[0]
    for row, scalar in enumerate(scalars):
        start, _, fidelity = scalar.service(node_a, node_b).acquire_record(0.0)
        assert starts[row] == start
        assert fidelities[row] == fidelity


def test_directory_batch_rejects_empty_seeds():
    from repro.exceptions import RuntimeSimulationError

    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("TLIM-16", "original")
    with pytest.raises(RuntimeSimulationError):
        EntanglementDirectoryBatch(cell.architecture, [],
                                   cell.streams.pair_list)
