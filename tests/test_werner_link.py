"""Unit tests for Werner states and entanglement-link records."""

import numpy as np
import pytest

from repro.entanglement import (
    EntanglementLink,
    LinkLocation,
    WernerState,
    werner_density_matrix,
    werner_fidelity_after,
)
from repro.exceptions import EntanglementError


class TestWernerDecay:
    def test_no_decay_at_zero_time(self):
        assert werner_fidelity_after(0.99, 0.0, 0.002) == pytest.approx(0.99)

    def test_monotone_decrease(self):
        values = [werner_fidelity_after(0.99, t, 0.002) for t in (0, 10, 50, 200)]
        assert values == sorted(values, reverse=True)

    def test_asymptote_is_quarter(self):
        assert werner_fidelity_after(0.99, 1e7, 0.002) == pytest.approx(0.25, abs=1e-6)

    def test_formula(self):
        f0, t, kappa = 0.95, 25.0, 0.002
        decay = np.exp(-2 * kappa * t)
        expected = f0 * decay + (1 - decay) / 4
        assert werner_fidelity_after(f0, t, kappa) == pytest.approx(expected)

    def test_zero_kappa_preserves_fidelity(self):
        assert werner_fidelity_after(0.9, 100.0, 0.0) == pytest.approx(0.9)

    def test_invalid_arguments(self):
        with pytest.raises(EntanglementError):
            werner_fidelity_after(1.5, 1.0, 0.1)
        with pytest.raises(EntanglementError):
            werner_fidelity_after(0.9, -1.0, 0.1)
        with pytest.raises(EntanglementError):
            werner_fidelity_after(0.9, 1.0, -0.1)


class TestWernerState:
    def test_density_matrix_properties(self):
        rho = werner_density_matrix(0.9)
        assert np.allclose(np.trace(rho), 1.0)
        assert np.allclose(rho, rho.conj().T)
        assert np.all(np.linalg.eigvalsh(rho) > -1e-12)

    def test_fidelity_recovered_from_matrix(self):
        fidelity = 0.87
        rho = werner_density_matrix(fidelity)
        bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert bell @ rho @ bell == pytest.approx(fidelity)

    def test_pure_bell_limit(self):
        rho = werner_density_matrix(1.0)
        assert np.linalg.matrix_rank(np.round(rho, 10)) == 1

    def test_entanglement_threshold(self):
        assert WernerState(0.6).is_entangled()
        assert not WernerState(0.45).is_entangled()

    def test_concurrence(self):
        assert WernerState(1.0).concurrence() == pytest.approx(1.0)
        assert WernerState(0.5).concurrence() == pytest.approx(0.0)

    def test_after_idling(self):
        state = WernerState(0.99).after_idling(50.0, 0.002)
        assert state.fidelity < 0.99

    def test_out_of_range_rejected(self):
        with pytest.raises(EntanglementError):
            WernerState(0.1)
        with pytest.raises(EntanglementError):
            werner_density_matrix(0.2)


class TestEntanglementLink:
    def test_normalised_node_pair(self):
        link = EntanglementLink(node_pair=(1, 0), created_time=5.0)
        assert link.node_pair == (0, 1)

    def test_age_and_fidelity(self):
        link = EntanglementLink(node_pair=(0, 1), created_time=10.0,
                                initial_fidelity=0.99)
        assert link.age(15.0) == pytest.approx(5.0)
        assert link.fidelity_at(10.0, 0.002) == pytest.approx(0.99)
        assert link.fidelity_at(60.0, 0.002) < 0.99

    def test_age_before_creation_rejected(self):
        link = EntanglementLink(node_pair=(0, 1), created_time=10.0)
        with pytest.raises(EntanglementError):
            link.age(5.0)

    def test_lifecycle(self):
        link = EntanglementLink(node_pair=(0, 1), created_time=0.0)
        assert link.is_available
        link.move_to_buffer(1.0)
        assert link.location is LinkLocation.BUFFER
        age = link.consume(7.0)
        assert age == pytest.approx(7.0)
        assert not link.is_available
        with pytest.raises(EntanglementError):
            link.consume(8.0)

    def test_discard(self):
        link = EntanglementLink(node_pair=(0, 1), created_time=0.0)
        link.discard(3.0)
        assert link.location is LinkLocation.DISCARDED
        with pytest.raises(EntanglementError):
            link.discard(4.0)

    def test_buffer_transition_only_from_comm(self):
        link = EntanglementLink(node_pair=(0, 1), created_time=0.0)
        link.move_to_buffer(1.0)
        with pytest.raises(EntanglementError):
            link.move_to_buffer(2.0)

    def test_same_node_rejected(self):
        with pytest.raises(EntanglementError):
            EntanglementLink(node_pair=(2, 2), created_time=0.0)

    def test_unique_ids(self):
        a = EntanglementLink(node_pair=(0, 1), created_time=0.0)
        b = EntanglementLink(node_pair=(0, 1), created_time=0.0)
        assert a.link_id != b.link_id
