"""Tests for the high-level DQCSimulator API, configs, experiments, analysis."""

import pytest

from repro.analysis import (
    comparison_report,
    format_table,
    relative_change,
    relative_depth_report,
    summarize,
    table1_report,
    table2_report,
)
from repro.benchmarks import tlim_circuit
from repro.core import (
    DQCSimulator,
    ExperimentConfig,
    ExperimentRunner,
    PAPER_32Q_SYSTEM,
    PAPER_64Q_SYSTEM,
    SystemConfig,
    run_comm_qubit_sweep,
    run_design_comparison,
)
from repro.core.results import BenchmarkComparison, DesignSummary
from repro.exceptions import ConfigurationError


class TestSystemConfig:
    def test_paper_configurations(self):
        assert PAPER_32Q_SYSTEM.total_data_qubits == 32
        assert PAPER_64Q_SYSTEM.total_data_qubits == 64
        assert PAPER_64Q_SYSTEM.comm_qubits_per_node == 20

    def test_build_architecture(self, small_system):
        architecture = small_system.build_architecture()
        assert architecture.total_data_qubits == small_system.total_data_qubits
        assert architecture.physics.epr_success_probability == pytest.approx(0.4)

    def test_with_comm_and_buffer(self):
        tweaked = PAPER_32Q_SYSTEM.with_comm_and_buffer(15, 15)
        assert tweaked.comm_qubits_per_node == 15
        assert PAPER_32Q_SYSTEM.comm_qubits_per_node == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_nodes=1)
        with pytest.raises(ConfigurationError):
            SystemConfig(data_qubits_per_node=0)
        with pytest.raises(ConfigurationError):
            SystemConfig(comm_qubits_per_node=0)

    def test_experiment_config(self, small_system):
        config = ExperimentConfig(benchmarks=("TLIM-32",), num_runs=3,
                                  base_seed=10, system=small_system)
        assert config.seeds() == [10, 11, 12]
        with pytest.raises(ConfigurationError):
            ExperimentConfig(benchmarks=())
        with pytest.raises(ConfigurationError):
            ExperimentConfig(benchmarks=("TLIM-32",), num_runs=0)


class TestSimulatorAPI:
    def test_simulate_benchmark_by_name(self, small_simulator):
        circuit = tlim_circuit(12, num_steps=1)
        result = small_simulator.simulate(circuit, design="async_buf", seed=1)
        assert result.depth > 0
        assert 0 < result.fidelity <= 1

    def test_program_cache_reused(self, small_simulator):
        circuit = tlim_circuit(12, num_steps=1)
        program = small_simulator.prepare(circuit)
        assert small_simulator.prepare(program) is program

    def test_named_benchmark_cached(self):
        simulator = DQCSimulator()
        first = simulator.prepare("TLIM-32")
        second = simulator.prepare("tlim-32")
        assert first is second

    def test_simulate_all_designs(self, small_simulator):
        circuit = tlim_circuit(12, num_steps=1)
        results = small_simulator.simulate_all_designs(circuit, seed=2)
        assert set(results) == {"original", "sync_buf", "async_buf", "adapt_buf",
                                "init_buf", "ideal"}

    def test_circuit_too_large_rejected(self, small_simulator):
        with pytest.raises(ConfigurationError):
            small_simulator.prepare(tlim_circuit(40, num_steps=1))

    def test_invalid_input_type(self, small_simulator):
        with pytest.raises(ConfigurationError):
            small_simulator.prepare(42)

    def test_describe(self, small_simulator):
        description = small_simulator.describe()
        assert description["system"]["psucc"] == pytest.approx(0.4)
        assert "adapt_buf" in description["designs"]

    def test_ideal_reference(self, small_simulator):
        circuit = tlim_circuit(12, num_steps=1)
        ideal = small_simulator.ideal_reference(circuit)
        assert ideal.design == "ideal"


class TestExperimentRunner:
    def test_runner_aggregates(self, small_system):
        config = ExperimentConfig(benchmarks=("TLIM-32",), designs=("ideal",),
                                  num_runs=2, system=SystemConfig(
                                      data_qubits_per_node=16,
                                      comm_qubits_per_node=4,
                                      buffer_qubits_per_node=4))
        runner = ExperimentRunner(config)
        comparison = runner.run_benchmark("TLIM-32")
        assert comparison.design("ideal").num_runs == 2

    def test_run_design_comparison_helper(self, small_system):
        comparisons = run_design_comparison(
            ["TLIM-32"], designs=["sync_buf", "async_buf", "ideal"], num_runs=2,
            system=SystemConfig(data_qubits_per_node=16, comm_qubits_per_node=6,
                                buffer_qubits_per_node=6),
        )
        comparison = comparisons["TLIM-32"]
        relative = comparison.relative_depth_table()
        assert relative["ideal"] == pytest.approx(1.0)
        assert relative["sync_buf"] >= 1.0
        assert comparison.depth_reduction_vs("sync_buf", "async_buf") > -0.5

    def test_comm_qubit_sweep(self):
        sweep = run_comm_qubit_sweep(
            "TLIM-32", [4, 8], designs=["async_buf", "ideal"], num_runs=1,
            base_system=SystemConfig(data_qubits_per_node=16,
                                     comm_qubits_per_node=4,
                                     buffer_qubits_per_node=4),
        )
        assert set(sweep) == {4, 8}
        more = sweep[8].design("async_buf").depth.mean
        fewer = sweep[4].design("async_buf").depth.mean
        assert more <= fewer + 1e-9

    def test_sweep_requires_counts(self):
        with pytest.raises(ConfigurationError):
            run_comm_qubit_sweep("TLIM-32", [])


class TestAnalysis:
    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        low, high = stats.confidence_interval()
        assert low < stats.mean < high
        assert stats.standard_error > 0

    def test_summarize_single_sample(self):
        stats = summarize([2.0])
        assert stats.std == 0.0
        assert stats.confidence_interval() == (2.0, 2.0)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_relative_change(self):
        assert relative_change(10.0, 5.0) == pytest.approx(0.5)
        assert relative_change(0.0, 5.0) == 0.0

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_table_reports(self):
        table2 = table2_report()
        assert "EPR pair preparation" in table2
        table1 = table1_report(
            {"X": {"qubits": 4, "local_2q": 3, "remote_2q": 1,
                   "single_q": 2, "depth": 5}},
            paper_values={"X": {"local_2q": 3, "remote_2q": 1, "single_q": 2,
                                "depth": 5}},
        )
        assert "(paper)" in table1

    def test_comparison_report(self, small_system):
        comparisons = run_design_comparison(
            ["TLIM-32"], designs=["async_buf", "ideal"], num_runs=1,
            system=SystemConfig(data_qubits_per_node=16, comm_qubits_per_node=4,
                                buffer_qubits_per_node=4),
        )
        comparison = comparisons["TLIM-32"]
        depth_text = comparison_report(comparison, metric="depth")
        fidelity_text = comparison_report(comparison, metric="fidelity")
        assert "async_buf" in depth_text and "ideal" in fidelity_text
        with pytest.raises(ValueError):
            comparison_report(comparison, metric="volume")
        summary_text = relative_depth_report([comparison])
        assert "TLIM-32" in summary_text

    def test_design_summary_from_results(self, small_simulator):
        circuit = tlim_circuit(12, num_steps=1)
        results = [small_simulator.simulate(circuit, design="async_buf", seed=s)
                   for s in (1, 2)]
        summary = DesignSummary.from_results(results)
        assert summary.num_runs == 2
        assert summary.depth.mean > 0
        comparison = BenchmarkComparison(benchmark="toy")
        comparison.add(summary)
        assert comparison.designs == ["async_buf"]
        with pytest.raises(ValueError):
            DesignSummary.from_results([])


class TestApiRegistration:
    """The api facade's benchmark / design registration entry points."""

    def test_register_benchmark_round_trip(self):
        from repro import api
        from repro.benchmarks.registry import BENCHMARKS

        spec = api.BenchmarkSpec(
            name="GHZ-TEST-12", num_qubits=12,
            builder=lambda: tlim_circuit(12, num_steps=1),
            description="registration test benchmark")
        try:
            assert api.register_benchmark(spec) is spec
            assert api.get_benchmark("ghz-test-12") is spec
            assert "GHZ-TEST-12" in api.list_benchmarks()
            with pytest.raises(Exception, match="already registered"):
                api.register_benchmark(spec)
            replacement = api.BenchmarkSpec(
                name="GHZ-TEST-12", num_qubits=12,
                builder=lambda: tlim_circuit(12, num_steps=2))
            assert api.register_benchmark(replacement, overwrite=True) \
                is replacement
        finally:
            BENCHMARKS.pop("GHZ-TEST-12", None)

    def test_register_design_round_trip(self):
        from repro import api
        from repro.runtime.designs import DESIGNS, DESIGN_ORDER

        spec = api.get_design("adapt_buf").with_overrides(
            name="adapt_test_cutoff", buffer_cutoff=40.0)
        try:
            assert api.register_design(spec) is spec
            assert api.get_design("adapt_test_cutoff") is spec
            assert api.list_designs()[-1] == "adapt_test_cutoff"
            with pytest.raises(ConfigurationError, match="already registered"):
                api.register_design(spec)
        finally:
            DESIGNS.pop("adapt_test_cutoff", None)
            if "adapt_test_cutoff" in DESIGN_ORDER:
                DESIGN_ORDER.remove("adapt_test_cutoff")
