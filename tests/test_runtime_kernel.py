"""Unit tests for the event kernel, resource trackers, designs, and metrics."""

import pytest

from repro.entanglement import AttemptPolicy
from repro.runtime import (
    DataQubitTracker,
    DesignSpec,
    EntanglementDirectory,
    Event,
    EventQueue,
    ExecutionTrace,
    GateTraceEntry,
    SimulationClock,
    get_design,
    list_designs,
)
from repro.runtime.designs import DESIGN_ORDER
from repro.runtime.metrics import ExecutionResult, RemoteGateRecord
from repro.noise.fidelity import FidelityBreakdown
from repro.exceptions import ConfigurationError, RuntimeSimulationError


class TestEventKernel:
    def test_clock_advances_monotonically(self):
        clock = SimulationClock()
        clock.advance_to(5.0)
        clock.advance_by(2.0)
        assert clock.now == pytest.approx(7.0)
        with pytest.raises(RuntimeSimulationError):
            clock.advance_to(3.0)
        with pytest.raises(RuntimeSimulationError):
            clock.advance_by(-1.0)

    def test_queue_orders_by_time_then_insertion(self):
        queue = EventQueue()
        queue.schedule(5.0, "b")
        queue.schedule(1.0, "a")
        queue.schedule(5.0, "c")
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == ["a", "b", "c"]

    def test_pop_until(self):
        queue = EventQueue()
        for t in (1.0, 2.0, 3.0, 10.0):
            queue.schedule(t, "tick")
        drained = list(queue.pop_until(3.0))
        assert len(drained) == 3
        assert len(queue) == 1

    def test_peek_and_empty(self):
        queue = EventQueue()
        assert queue.is_empty() and queue.peek() is None
        queue.push(Event(2.0, "x"))
        assert queue.peek().time == 2.0
        with pytest.raises(RuntimeSimulationError):
            EventQueue().pop()


class TestDataQubitTracker:
    def test_occupy_and_makespan(self):
        tracker = DataQubitTracker(3)
        finish = tracker.occupy((0, 1), 0.0, 2.0)
        assert finish == 2.0
        assert tracker.earliest_start((1, 2)) == 2.0
        tracker.occupy((2,), 0.0, 1.0)
        assert tracker.makespan == 2.0

    def test_conflicting_start_rejected(self):
        tracker = DataQubitTracker(2)
        tracker.occupy((0,), 0.0, 5.0)
        with pytest.raises(RuntimeSimulationError):
            tracker.occupy((0,), 3.0, 1.0)

    def test_idle_accounting(self):
        tracker = DataQubitTracker(2)
        tracker.occupy((0,), 0.0, 1.0)
        tracker.occupy((1,), 0.0, 4.0)
        # Qubit 0 idles from t=1 to the makespan (4).
        assert tracker.idle_time(0) == pytest.approx(3.0)
        assert tracker.idle_time(1) == pytest.approx(0.0)
        assert tracker.total_idle_time() == pytest.approx(3.0)

    def test_unused_qubits_do_not_idle(self):
        tracker = DataQubitTracker(3)
        tracker.occupy((0,), 0.0, 2.0)
        assert tracker.idle_time(2) == 0.0

    def test_utilisation(self):
        tracker = DataQubitTracker(2)
        tracker.occupy((0,), 0.0, 2.0)
        tracker.occupy((1,), 0.0, 4.0)
        assert tracker.utilisation() == pytest.approx((2.0 + 4.0) / (4.0 * 2))

    def test_validation(self):
        with pytest.raises(RuntimeSimulationError):
            DataQubitTracker(0)
        tracker = DataQubitTracker(1)
        with pytest.raises(RuntimeSimulationError):
            tracker.available_time(5)
        with pytest.raises(RuntimeSimulationError):
            tracker.occupy((0,), 0.0, -1.0)


class TestEntanglementDirectory:
    def test_services_created_per_pair(self, small_architecture):
        directory = EntanglementDirectory(small_architecture)
        service = directory.service(1, 0)
        assert service.node_pair == (0, 1)
        assert directory.service(0, 1) is service

    def test_unbuffered_configuration(self, small_architecture):
        directory = EntanglementDirectory(small_architecture, use_buffer=False)
        assert directory.service(0, 1).buffer.capacity == 0

    def test_prefill_configuration(self, small_architecture):
        directory = EntanglementDirectory(small_architecture, prefill=True)
        capacity = small_architecture.buffer_capacity_between(0, 1)
        assert directory.count_available(0, 1, 0.0) == capacity

    def test_aggregate_statistics(self, small_architecture):
        directory = EntanglementDirectory(small_architecture, seed=1)
        directory.service(0, 1).acquire(20.0)
        directory.finalize(50.0)
        stats = directory.aggregate_statistics()
        assert stats["generated"] >= 1
        assert stats["consumed_from_buffer"] + stats["consumed_direct"] == 1


class TestDesigns:
    def test_paper_order(self):
        assert list_designs() == DESIGN_ORDER
        assert DESIGN_ORDER[0] == "original" and DESIGN_ORDER[-1] == "ideal"

    def test_design_flags(self):
        assert get_design("original").use_buffer is False
        assert get_design("sync_buf").attempt_policy is AttemptPolicy.SYNCHRONOUS
        assert get_design("async_buf").attempt_policy is AttemptPolicy.ASYNCHRONOUS
        assert get_design("adapt_buf").adaptive_scheduling is True
        assert get_design("init_buf").prefill_buffers is True
        assert get_design("ideal").ideal is True

    def test_lookup_case_insensitive_and_unknown(self):
        assert get_design("ADAPT_BUF").name == "adapt_buf"
        with pytest.raises(ConfigurationError):
            get_design("bogus")

    def test_invalid_design_combinations(self):
        with pytest.raises(ConfigurationError):
            DesignSpec(name="broken", use_buffer=False,
                       attempt_policy=AttemptPolicy.SYNCHRONOUS,
                       prefill_buffers=True)

    def test_with_overrides(self):
        tweaked = get_design("async_buf").with_overrides(buffer_cutoff=30.0)
        assert tweaked.buffer_cutoff == 30.0
        assert get_design("async_buf").buffer_cutoff is None


class TestMetricsAndTrace:
    def _result(self, makespan=50.0, fidelity=0.8):
        return ExecutionResult(
            design="async_buf", benchmark="toy", seed=0, makespan=makespan,
            fidelity=fidelity, fidelity_breakdown=FidelityBreakdown(),
            num_single_qubit=4, num_local_two_qubit=3, num_remote=2,
            num_measurements=0, qubit_idle_total=10.0,
            remote_records=[
                RemoteGateRecord(1, 5.0, 7.0, 8.2, 6.0, 0.98),
                RemoteGateRecord(3, 9.0, 9.0, 10.2, 8.5, 0.97),
            ],
            epr_statistics={"generated": 10, "wasted": 4},
        )

    def test_relative_metrics(self):
        result = self._result()
        assert result.depth_relative_to(25.0) == pytest.approx(2.0)
        assert result.fidelity_relative_to(0.9) == pytest.approx(0.8 / 0.9)

    def test_remote_summaries(self):
        result = self._result()
        assert result.mean_remote_wait() == pytest.approx(1.0)
        assert result.mean_link_age() == pytest.approx((1.0 + 0.5) / 2)
        assert result.mean_link_fidelity() == pytest.approx(0.975)
        assert result.epr_waste_fraction() == pytest.approx(0.4)
        assert result.summary()["remote_gates"] == 2

    def test_trace_consistency_check(self):
        trace = ExecutionTrace()
        trace.record(GateTraceEntry(0, "h", (0,), 0.0, 0.1))
        trace.record(GateTraceEntry(1, "cx", (0, 1), 0.1, 1.1, is_remote=False))
        assert trace.is_consistent()
        assert trace.makespan() == pytest.approx(1.1)
        trace.record(GateTraceEntry(2, "cx", (1, 2), 0.5, 1.5))
        assert not trace.is_consistent()

    def test_trace_render_and_filters(self):
        trace = ExecutionTrace()
        trace.record(GateTraceEntry(0, "cx", (0, 1), 0.0, 1.2, is_remote=True,
                                    link_fidelity=0.98))
        assert len(trace.remote_entries()) == 1
        assert trace.busy_intervals(0) == [(0.0, 1.2)]
        assert "cx" in trace.render()
