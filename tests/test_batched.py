"""Batched execution core: equivalence with the legacy reference executor.

The contract of this PR: for identical seeds the trajectory-batched
executor produces :class:`ExecutionResult`s *bit-identical* to the legacy
:class:`DesignExecutor` — every field, including remote-gate records,
fidelity breakdowns, entanglement statistics, and adaptive variant
histograms.  These tests pin that contract across all six designs, across
topologies, with prebuilt schedule lookup tables, and through the engine's
backends and chunked dispatch.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import SystemConfig
from repro.engine import (
    ArtifactCache,
    CellCompiler,
    ProcessPoolBackend,
    SerialBackend,
    chunk_tasks,
)
from repro.engine.backends import ExecutionTask, get_backend
from repro.exceptions import ConfigurationError
from repro.runtime import (
    BatchedExecutor,
    DesignExecutor,
    execution_mode,
    list_designs,
)
from repro.runtime.execmode import BATCHED, EXEC_ENV_VAR, LEGACY
from repro.runtime.gatestream import OP_REMOTE, lower_cell
from repro.runtime.designs import get_design

SEEDS = [1, 2, 3]


def _assert_identical(legacy, batched):
    assert len(legacy) == len(batched)
    for reference, candidate in zip(legacy, batched):
        assert candidate.seed == reference.seed
        assert candidate.makespan == reference.makespan
        assert candidate.fidelity == reference.fidelity
        assert candidate.fidelity_breakdown == reference.fidelity_breakdown
        assert candidate.qubit_idle_total == reference.qubit_idle_total
        assert candidate.remote_records == reference.remote_records
        assert candidate.epr_statistics == reference.epr_statistics
        assert candidate.variant_histogram == reference.variant_histogram
        # Full dataclass equality last: catches any field the above missed.
        assert candidate == reference


# ---------------------------------------------------------------------------
# equivalence across the whole design / benchmark grid
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("design", list_designs())
@pytest.mark.parametrize("benchmark_name", ["TLIM-16", "QAOA-r2-16"])
def test_batched_equals_legacy_all_designs(benchmark_name, design):
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile(benchmark_name, design)
    legacy = cell.execute_batch(SEEDS, mode="legacy")
    batched = cell.execute_batch(SEEDS, mode="batched")
    _assert_identical(legacy, batched)


@pytest.mark.parametrize("topology,partition_method", [
    ("all_to_all", "multilevel"),
    ("ring", "multilevel"),
    ("line", "contiguous"),
])
def test_batched_equals_legacy_across_topologies(topology, partition_method):
    system = SystemConfig(num_nodes=4, data_qubits_per_node=8,
                          comm_qubits_per_node=8, buffer_qubits_per_node=8,
                          topology=topology, partition_method=partition_method)
    compiler = CellCompiler(system=system)
    for design in ("original", "async_buf", "adapt_buf"):
        cell = compiler.compile("TLIM-32", design)
        _assert_identical(cell.execute_batch(SEEDS, mode="legacy"),
                          cell.execute_batch(SEEDS, mode="batched"))


def test_batched_adaptive_uses_prebuilt_lookup():
    """The engine path hands the compile-time lookup to both cores."""
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("QAOA-r2-16", "adapt_buf")
    assert cell.lookup is not None
    assert cell.streams is not None and cell.streams.segments is not None
    assert len(cell.streams.segments) == cell.lookup.num_segments
    legacy = cell.execute_batch(SEEDS, mode="legacy")
    batched = cell.execute_batch(SEEDS, mode="batched")
    _assert_identical(legacy, batched)
    # Some run must actually exercise the adaptive rule for this to be a
    # meaningful equivalence case.
    assert any(sum(r.variant_histogram.values()) > 0 for r in batched)


def test_batched_standalone_without_prebuilt_streams():
    """BatchedExecutor lowers on the fly when no compile artifacts exist."""
    from repro.benchmarks.registry import build_benchmark
    from repro.partitioning.assigner import distribute_circuit

    system = SystemConfig()
    architecture = system.build_architecture()
    program = distribute_circuit(build_benchmark("TLIM-16"), num_nodes=2)
    for design in ("async_buf", "adapt_buf", "ideal"):
        legacy = [
            DesignExecutor(architecture, design, seed=seed).run(program)
            for seed in SEEDS
        ]
        batched = BatchedExecutor(architecture, design).run_batch(program, SEEDS)
        _assert_identical(legacy, batched)


def test_batched_custom_segment_length_and_policy():
    from repro.scheduling.policies import AdaptivePolicy

    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("TLIM-16", "adapt_buf", segment_length=3,
                            adaptive_policy=AdaptivePolicy(asap_threshold=2))
    _assert_identical(cell.execute_batch(SEEDS, mode="legacy"),
                      cell.execute_batch(SEEDS, mode="batched"))


def test_ideal_batch_results_are_independent_objects():
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("QFT-16", "ideal")
    results = cell.execute_batch([1, 2], mode="batched")
    assert results[0].seed == 1 and results[1].seed == 2
    assert results[0].fidelity_breakdown == results[1].fidelity_breakdown
    assert results[0].fidelity_breakdown is not results[1].fidelity_breakdown
    assert results[0].remote_records is not results[1].remote_records


# ---------------------------------------------------------------------------
# gate-stream lowering
# ---------------------------------------------------------------------------
def test_lowered_stream_matches_program():
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("TLIM-16", "async_buf")
    streams = cell.streams
    circuit = cell.program.circuit
    assert streams.flat.num_gates == circuit.num_gates
    remote = [i for i, gate in enumerate(circuit.gates) if gate.is_remote]
    assert [i for i in range(streams.flat.num_gates)
            if streams.flat.opcodes[i] == OP_REMOTE] == remote
    for index in remote:
        gate = circuit.gates[index]
        pair_id = int(streams.flat.pair_ids[index])
        nodes = tuple(sorted(cell.program.node_of(q) for q in gate.qubits))
        assert streams.pair_list[pair_id] == nodes
    assert streams.num_single + streams.num_two_total + streams.num_measure \
        <= circuit.num_gates
    assert streams.num_two_total - streams.num_local_two == len(remote)


def test_lower_cell_requires_lookup_for_adaptive():
    from repro.exceptions import RuntimeSimulationError

    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("TLIM-16", "adapt_buf")
    with pytest.raises(RuntimeSimulationError):
        lower_cell(cell.program, cell.architecture, get_design("adapt_buf"),
                   lookup=None)


def test_segment_streams_tile_the_circuit():
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("QAOA-r2-16", "init_buf")
    total = sum(
        segment.variants["original"].num_gates
        for segment in cell.streams.segments
    )
    assert total == cell.program.circuit.num_gates
    ids = cell.streams.flat.segment_ids
    assert int(ids.min()) == 0
    assert int(ids.max()) == len(cell.streams.segments) - 1
    assert all(ids[i] <= ids[i + 1] for i in range(len(ids) - 1))


# ---------------------------------------------------------------------------
# REPRO_EXEC selection
# ---------------------------------------------------------------------------
def test_execution_mode_resolution(monkeypatch):
    monkeypatch.delenv(EXEC_ENV_VAR, raising=False)
    assert execution_mode() == BATCHED
    monkeypatch.setenv(EXEC_ENV_VAR, "legacy")
    assert execution_mode() == LEGACY
    assert execution_mode("batched") == BATCHED  # override wins
    monkeypatch.setenv(EXEC_ENV_VAR, "warp-drive")
    with pytest.raises(ConfigurationError):
        execution_mode()


def test_repro_exec_env_selects_legacy(monkeypatch):
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("TLIM-16", "async_buf")
    monkeypatch.setenv(EXEC_ENV_VAR, "legacy")
    via_env = cell.execute(seed=7)
    monkeypatch.delenv(EXEC_ENV_VAR)
    via_batched = cell.execute(seed=7)
    assert via_env == via_batched


def test_collect_trace_routes_to_legacy():
    compiler = CellCompiler(system=SystemConfig())
    cell = compiler.compile("TLIM-16", "async_buf")
    executor = cell.executor(seed=1, collect_trace=True)
    result = executor.run(cell.program, benchmark_name=cell.benchmark)
    assert executor.last_trace is not None
    assert result == cell.execute(seed=1)


# ---------------------------------------------------------------------------
# backend chunking
# ---------------------------------------------------------------------------
def test_chunk_tasks_preserves_order_and_bounds():
    compiler = CellCompiler(system=SystemConfig())
    cell_a = compiler.compile("TLIM-16", "async_buf")
    cell_b = compiler.compile("TLIM-16", "ideal")
    tasks = [ExecutionTask(cell_a, 1), ExecutionTask(cell_a, 2),
             ExecutionTask(cell_b, 1), ExecutionTask(cell_a, 3),
             ExecutionTask(cell_a, 4), ExecutionTask(cell_a, 5)]
    chunks = chunk_tasks(tasks, chunk_size=2)
    assert [(cell is cell_a, seeds) for cell, seeds in chunks] == [
        (True, [1, 2]), (False, [1]), (True, [3, 4]), (True, [5]),
    ]
    flattened = [seed for _, seeds in chunks for seed in seeds]
    assert flattened == [task.seed for task in tasks]
    with pytest.raises(ConfigurationError):
        chunk_tasks(tasks, chunk_size=0)


def test_serial_backend_handles_interleaved_cells():
    compiler = CellCompiler(system=SystemConfig())
    cell_a = compiler.compile("TLIM-16", "async_buf")
    cell_b = compiler.compile("QFT-16", "original")
    tasks = [ExecutionTask(cell_a, 1), ExecutionTask(cell_b, 1),
             ExecutionTask(cell_a, 2), ExecutionTask(cell_b, 2)]
    results = SerialBackend().execute(tasks)
    assert [r.seed for r in results] == [1, 1, 2, 2]
    assert [r.benchmark for r in results] == [
        cell_a.benchmark, cell_b.benchmark, cell_a.benchmark, cell_b.benchmark,
    ]
    assert results == [task.run() for task in tasks]


def test_process_backend_chunked_results_match_serial():
    compiler = CellCompiler(system=SystemConfig())
    cells = [compiler.compile("TLIM-16", design)
             for design in ("original", "async_buf", "adapt_buf")]
    tasks = [ExecutionTask(cell, seed) for cell in cells for seed in SEEDS]
    serial = SerialBackend().execute(tasks)
    with ProcessPoolBackend(max_workers=2, chunksize=2) as backend:
        first = backend.execute(tasks)
        # Second call brings a cell the pool initializer never saw, which
        # rebuilds the pool with the accumulated cell set.
        extra = compiler.compile("QFT-16", "async_buf")
        tasks_2 = tasks + [ExecutionTask(extra, seed) for seed in SEEDS]
        second = backend.execute(tasks_2)
    assert first == serial
    assert second[:len(tasks)] == serial
    assert second[len(tasks):] == SerialBackend().execute(
        [ExecutionTask(extra, seed) for seed in SEEDS]
    )


def test_process_backend_default_workers_never_one_on_multicore(monkeypatch):
    backend = ProcessPoolBackend()
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2, 3})
    # Every usable CPU gets a worker — never a lone worker on a multi-core
    # machine (the BENCH_engine.json 0.89x regression).
    assert backend._workers() >= 2
    if hasattr(os, "sched_getaffinity"):
        # Pinned to one CPU: a 2-worker pool would contend for it, which is
        # worse than serial; a single "worker" short-circuits to inline.
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0})
        assert backend._workers() == 1
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0})
    assert backend._workers() == 1
    assert ProcessPoolBackend(max_workers=3)._workers() == 3


def test_get_backend_honours_repro_backend_env(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert isinstance(get_backend(None), SerialBackend)
    monkeypatch.setenv("REPRO_BACKEND", "process")
    backend = get_backend(None)
    assert isinstance(backend, ProcessPoolBackend)
    backend.close()
    monkeypatch.setenv("REPRO_BACKEND", "")
    assert isinstance(get_backend(None), SerialBackend)


# ---------------------------------------------------------------------------
# ArtifactCache statistics (satellite)
# ---------------------------------------------------------------------------
def test_artifact_cache_hit_rate_guard_and_reset():
    cache = ArtifactCache()
    assert cache.hit_rate == 0.0
    assert cache.stats() == {
        "entries": 0, "hits": 0, "misses": 0, "lookups": 0, "hit_rate": 0.0,
    }
    assert cache.get("cell", "missing") is None
    cache.put("cell", "k", object())
    assert cache.get("cell", "k") is not None
    assert cache.stats()["lookups"] == 2
    assert cache.hit_rate == 0.5
    cache.reset_stats()
    assert cache.stats() == {
        "entries": 1, "hits": 0, "misses": 0, "lookups": 0, "hit_rate": 0.0,
    }


# ---------------------------------------------------------------------------
# bulk sampling (vectorized generator)
# ---------------------------------------------------------------------------
def test_block_sampling_matches_scalar_rng_stream():
    import numpy as np

    from repro.entanglement.attempts import AttemptSchedule
    from repro.entanglement.generator import EntanglementGenerator

    schedule = AttemptSchedule(num_pairs=4)
    generator = EntanglementGenerator(schedule, success_probability=0.4,
                                      seed=11)
    for pair in range(4):
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=11, spawn_key=(pair,))
        )
        scalar = [bool(rng.random() < 0.4) for _ in range(300)]
        bulk = [generator.attempt_succeeds(pair, k) for k in range(300)]
        assert bulk == scalar


def test_bulk_successes_between_matches_attempt_scan():
    from repro.entanglement.attempts import AttemptSchedule
    from repro.entanglement.generator import EntanglementGenerator

    schedule = AttemptSchedule(num_pairs=3)
    generator = EntanglementGenerator(schedule, success_probability=0.3,
                                      seed=5)
    for pair in range(3):
        for start, end in [(0.0, 35.0), (10.0, 10.0), (17.3, 220.0),
                           (220.0, 221.0), (0.0, 1.0)]:
            events = generator.successes_between(pair, start, end)
            expected = []
            attempt = schedule.attempt_index_completing_after(pair, start)
            while True:
                completion = schedule.attempt_completion(pair, attempt)
                if completion > end + 1e-12:
                    break
                if completion > start + 1e-12 and \
                        generator.attempt_succeeds(pair, attempt):
                    expected.append((completion, pair, attempt))
                attempt += 1
            assert [(e.time, e.pair_index, e.attempt_index)
                    for e in events] == expected
