"""Persistent on-disk compile cache: cross-process reuse and resilience.

The disk tier must make a *fresh* cache instance (the cross-process case)
serve compiled artifacts without recompilation, survive corrupted and
concurrent writes, and invalidate itself when the artifact format version
changes.  The in-memory :class:`ArtifactCache` fixes ride along: a stored
``None`` is a hit, not a miss.
"""

from __future__ import annotations

import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import SystemConfig
from repro.engine import CellCompiler
from repro.engine.cache import (
    CACHE_ENV_VAR,
    ArtifactCache,
    PersistentArtifactCache,
    default_cache,
    fingerprint,
    resolve_cache_dir,
)
from repro.study.cli import main
from repro.study.study import Study

SMALL_SYSTEM_FLAGS = [
    "--data-qubits", "16", "--comm-qubits", "4", "--buffer-qubits", "4",
]


# ---------------------------------------------------------------------------
# in-memory cache regressions (satellite fix)
# ---------------------------------------------------------------------------
class TestArtifactCacheSentinel:
    def test_stored_none_is_a_hit(self):
        cache = ArtifactCache()
        cache.put("ns", "k", None)
        assert cache.get("ns", "k") is None
        assert cache.hits == 1
        assert cache.misses == 0

    def test_absent_key_is_a_miss(self):
        cache = ArtifactCache()
        assert cache.get("ns", "absent") is None
        assert cache.misses == 1

    def test_stats_are_plain_ints(self):
        cache = ArtifactCache()
        cache.put("ns", "k", 1)
        cache.get("ns", "k")
        cache.get("ns", "absent")
        stats = cache.stats()
        for field in ("entries", "hits", "misses", "lookups"):
            assert type(stats[field]) is int
        assert type(stats["hit_rate"]) is float


# ---------------------------------------------------------------------------
# the disk tier
# ---------------------------------------------------------------------------
class TestPersistentCache:
    def test_fresh_instance_reads_prior_writes(self, tmp_path):
        """A new instance on the same directory — the cross-process case."""
        first = PersistentArtifactCache(tmp_path)
        first.put("cell", "abc", {"payload": [1, 2, 3]})
        second = PersistentArtifactCache(tmp_path)
        assert second.get("cell", "abc") == {"payload": [1, 2, 3]}
        assert second.disk_hits == 1
        assert second.misses == 0

    def test_memory_front_serves_repeat_lookups(self, tmp_path):
        cache = PersistentArtifactCache(tmp_path)
        cache.put("cell", "abc", "artifact")
        cache.get("cell", "abc")
        assert cache.memory_hits == 1
        assert cache.disk_hits == 0

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        cache = PersistentArtifactCache(tmp_path)
        cache.put("cell", "abc", "artifact")
        warm = PersistentArtifactCache(tmp_path)
        warm.get("cell", "abc")
        warm.get("cell", "abc")
        assert warm.disk_hits == 1
        assert warm.memory_hits == 1

    def test_version_salt_invalidates(self, tmp_path):
        old = PersistentArtifactCache(tmp_path, version=1)
        old.put("cell", "abc", "v1-artifact")
        upgraded = PersistentArtifactCache(tmp_path, version=2)
        assert upgraded.get("cell", "abc") is None
        assert upgraded.misses == 1
        # The v1 tree is untouched: a rollback still finds its artifacts.
        assert PersistentArtifactCache(tmp_path, version=1).get(
            "cell", "abc") == "v1-artifact"

    def test_corrupted_entry_recovers_as_miss(self, tmp_path):
        cache = PersistentArtifactCache(tmp_path)
        cache.put("cell", "abc", "artifact")
        path = cache.entry_path("cell", "abc")
        path.write_bytes(b"not a pickle")
        fresh = PersistentArtifactCache(tmp_path)
        assert fresh.get("cell", "abc") is None
        assert fresh.disk_errors == 1
        assert not path.exists()  # the bad entry is dropped, not retried

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = PersistentArtifactCache(tmp_path)
        for index in range(5):
            cache.put("cell", f"k{index}", list(range(index)))
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_unpicklable_artifact_degrades_to_memory(self, tmp_path):
        cache = PersistentArtifactCache(tmp_path)
        artifact = lambda: None  # noqa: E731 - deliberately unpicklable
        with pytest.raises(Exception):
            pickle.dumps(artifact)
        cache.put("cell", "abc", artifact)
        assert cache.get("cell", "abc") is artifact  # memory still serves it
        assert PersistentArtifactCache(tmp_path).get("cell", "abc") is None

    def test_bounded_memory_keeps_disk_complete(self, tmp_path):
        cache = PersistentArtifactCache(tmp_path, max_entries=2)
        for index in range(5):
            cache.put("cell", f"k{index}", index)
        assert len(cache) == 2  # memory evicted down to the bound
        assert cache.disk_count() == 5  # the disk tier keeps everything
        assert cache.get("cell", "k0") == 0  # evicted entries reload

    def test_stored_none_round_trips_through_disk(self, tmp_path):
        cache = PersistentArtifactCache(tmp_path)
        cache.put("cell", "abc", None)
        fresh = PersistentArtifactCache(tmp_path)
        assert fresh.get("cell", "abc") is None
        assert fresh.disk_hits == 1
        assert fresh.misses == 0

    def test_clear_removes_disk_tree(self, tmp_path):
        cache = PersistentArtifactCache(tmp_path)
        cache.put("cell", "abc", "artifact")
        cache.clear()
        assert cache.disk_count() == 0
        assert PersistentArtifactCache(tmp_path).get("cell", "abc") is None

    def test_stats_include_disk_counters(self, tmp_path):
        cache = PersistentArtifactCache(tmp_path)
        cache.put("cell", "abc", "artifact")
        cache.get("cell", "abc")
        stats = cache.stats()
        assert stats["memory_hits"] == 1
        assert stats["disk_entries"] == 1
        assert stats["disk_bytes"] > 0
        for field in ("memory_hits", "disk_hits", "disk_errors",
                      "disk_entries", "disk_bytes"):
            assert type(stats[field]) is int


# ---------------------------------------------------------------------------
# resolution / construction helpers
# ---------------------------------------------------------------------------
class TestResolution:
    def test_explicit_dir_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "flag") == tmp_path / "flag"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env"))
        assert resolve_cache_dir(None) == tmp_path / "env"

    def test_no_dir_resolves_to_none(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert resolve_cache_dir(None) is None
        assert resolve_cache_dir("") is None

    def test_default_cache_tiers(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        memory_only = default_cache()
        assert type(memory_only) is ArtifactCache
        persistent = default_cache(tmp_path)
        assert isinstance(persistent, PersistentArtifactCache)
        assert persistent.directory == tmp_path

    def test_study_honours_cache_dir(self, tmp_path):
        study = Study(benchmarks="TLIM-16", cache_dir=tmp_path)
        assert isinstance(study.cache, PersistentArtifactCache)
        study.close()

    def test_fingerprint_is_process_stable(self, tmp_path):
        """Fingerprints must match across interpreter runs for disk reuse."""
        code = ("import sys; sys.path.insert(0, sys.argv[1]); "
                "from repro.engine.cache import fingerprint; "
                "print(fingerprint('cell', ('TLIM-16', 'original'), 42))")
        src = str(Path(__file__).resolve().parent.parent / "src")
        runs = {
            subprocess.run(
                [sys.executable, "-c", code, src],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert runs == {fingerprint("cell", ("TLIM-16", "original"), 42)}


# ---------------------------------------------------------------------------
# end to end: compile once, reuse from a fresh process
# ---------------------------------------------------------------------------
class TestCrossProcessCompileReuse:
    def test_second_compiler_instance_skips_compilation(self, tmp_path):
        system = SystemConfig()
        cold = CellCompiler(system=system, cache_dir=tmp_path)
        cold.compile("TLIM-16", "original")
        assert cold.cache.misses > 0
        warm = CellCompiler(system=system, cache_dir=tmp_path)
        warm.compile("TLIM-16", "original")
        assert warm.cache.misses == 0
        assert warm.cache.disk_hits > 0

    def test_cached_cell_executes_identically(self, tmp_path):
        system = SystemConfig()
        seeds = [1, 2, 3]
        direct = CellCompiler(system=system).compile("QAOA-r2-16", "adapt_buf")
        expected = direct.execute_batch(seeds, mode="batched")
        CellCompiler(system=system, cache_dir=tmp_path).compile(
            "QAOA-r2-16", "adapt_buf")
        revived = CellCompiler(system=system, cache_dir=tmp_path).compile(
            "QAOA-r2-16", "adapt_buf")
        assert revived.execute_batch(seeds, mode="batched") == expected
        assert revived.execute_batch(seeds, mode="vector") == expected

    def test_cli_second_run_hits_everything(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["run", "--benchmark", "TLIM-16", "--design", "original",
                "--runs", "2", "--cache-dir", cache_dir, "--quiet",
                *SMALL_SYSTEM_FLAGS]
        assert main(argv) == 0
        first = capsys.readouterr().err
        assert "compile cache:" in first
        assert main(argv) == 0
        second = capsys.readouterr().err
        assert "misses=0" in second
        assert "hit_rate=1.00" in second

    def test_cli_cache_stats_show_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "--benchmark", "TLIM-16", "--design", "original",
                     "--runs", "1", "--cache-dir", cache_dir, "--quiet",
                     *SMALL_SYSTEM_FLAGS]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "disk_entries" in capsys.readouterr().out
        assert main(["cache", "show", "--cache-dir", cache_dir]) == 0
        assert "cell" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared" in capsys.readouterr().out
        assert PersistentArtifactCache(cache_dir).disk_count() == 0

    def test_cli_cache_requires_a_directory(self, monkeypatch, capsys):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_cli_cache_env_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        assert main(["cache", "stats"]) == 0
        assert str(tmp_path) in capsys.readouterr().out
