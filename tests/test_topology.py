"""Tests for the topology registry, link normalisation, and SystemConfig wiring."""

import pytest

from repro.core.config import SystemConfig
from repro.engine.compiler import CellCompiler
from repro.hardware import DQCArchitecture, QPUNode
from repro.hardware.topology import (
    TOPOLOGIES,
    Topology,
    get_topology,
    list_topologies,
    register_topology,
    validate_remote_pairs,
)
from repro.exceptions import (
    ArchitectureError,
    ConfigurationError,
    TopologyError,
)


def _nodes(count):
    return [QPUNode(i, 4, 2, 2) for i in range(count)]


class TestTopologyRegistry:
    def test_builtins_listed(self):
        assert list_topologies() == ["all_to_all", "line", "ring", "star"]

    def test_lookup_is_case_insensitive(self):
        assert get_topology("RING") is get_topology("ring")

    def test_instance_passthrough(self):
        topology = get_topology("line")
        assert get_topology(topology) is topology

    def test_unknown_name_lists_registry_and_family(self):
        with pytest.raises(TopologyError, match="grid-RxC"):
            get_topology("torus")

    def test_register_and_duplicate_rejected(self):
        custom = Topology("test-pair-only", lambda n: [(0, 1)])
        try:
            register_topology(custom)
            assert get_topology("test-pair-only") is custom
            with pytest.raises(TopologyError, match="already registered"):
                register_topology(Topology("test-pair-only", lambda n: None))
        finally:
            TOPOLOGIES.pop("test-pair-only", None)

    def test_grid_family_synthesised_and_cached(self):
        grid = get_topology("grid-2x3")
        assert grid is get_topology("GRID-2x3")
        assert "grid-2x3" not in list_topologies()


class TestTopologyLinks:
    def test_all_to_all_is_native_none(self):
        assert get_topology("all_to_all").links(4) is None

    @pytest.mark.parametrize("name, num_nodes, expected", [
        ("line", 2, [(0, 1)]),
        ("line", 4, [(0, 1), (1, 2), (2, 3)]),
        ("ring", 2, [(0, 1)]),
        ("ring", 3, [(0, 1), (0, 2), (1, 2)]),
        ("ring", 4, [(0, 1), (0, 3), (1, 2), (2, 3)]),
        ("star", 3, [(0, 1), (0, 2)]),
        ("star", 4, [(0, 1), (0, 2), (0, 3)]),
        ("grid-2x2", 4, [(0, 1), (0, 2), (1, 3), (2, 3)]),
        ("grid-2x3", 6, [(0, 1), (0, 3), (1, 2), (1, 4), (2, 5),
                         (3, 4), (4, 5)]),
    ])
    def test_link_lists(self, name, num_nodes, expected):
        assert get_topology(name).links(num_nodes) == expected

    def test_ring_3_equals_all_pairs(self):
        # At three nodes the ring is the complete interconnect.
        links = get_topology("ring").links(3)
        assert links == [(0, 1), (0, 2), (1, 2)]

    def test_grid_node_count_mismatch(self):
        with pytest.raises(TopologyError, match="exactly 6 nodes"):
            get_topology("grid-2x3").links(4)

    def test_too_few_nodes(self):
        with pytest.raises(TopologyError, match="at least 2"):
            get_topology("ring").links(1)


class TestLinkNormalisation:
    def test_reversed_and_duplicate_links_collapse(self):
        architecture = DQCArchitecture(
            nodes=_nodes(3), links=[(1, 0), (0, 1), (2, 1), (1, 2)],
        )
        assert architecture.links == [(0, 1), (1, 2)]
        assert architecture.node_pairs() == [(0, 1), (1, 2)]

    def test_disconnected_links_raise_named_error(self):
        with pytest.raises(TopologyError, match="disconnected"):
            DQCArchitecture(nodes=_nodes(4), links=[(0, 1), (2, 3)])

    def test_empty_links_disconnected(self):
        with pytest.raises(TopologyError, match="disconnected"):
            DQCArchitecture(nodes=_nodes(2), links=[])

    def test_invalid_link_still_rejected(self):
        with pytest.raises(ArchitectureError):
            DQCArchitecture(nodes=_nodes(2), links=[(0, 0)])
        with pytest.raises(ArchitectureError):
            DQCArchitecture(nodes=_nodes(2), links=[(0, 5)])

    def test_none_links_stay_all_to_all(self):
        architecture = DQCArchitecture(nodes=_nodes(3))
        assert architecture.links is None
        assert architecture.node_pairs() == [(0, 1), (0, 2), (1, 2)]


class TestSystemConfigTopology:
    def test_defaults_unchanged(self):
        system = SystemConfig()
        assert system.topology == "all_to_all"
        assert system.partition_method == "multilevel"
        assert system.build_architecture().links is None

    def test_unknown_names_fail_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            SystemConfig(topology="bogus")
        with pytest.raises(ConfigurationError,
                           match="unknown partitioning method"):
            SystemConfig(partition_method="bogus")

    def test_topology_arity_checked_at_construction(self):
        with pytest.raises(ConfigurationError, match="exactly 6 nodes"):
            SystemConfig(num_nodes=4, topology="grid-2x3")

    @pytest.mark.parametrize("num_nodes", [2, 3, 4])
    @pytest.mark.parametrize("topology",
                             ["all_to_all", "line", "ring", "star"])
    def test_build_architecture_every_topology(self, num_nodes, topology):
        system = SystemConfig(num_nodes=num_nodes, topology=topology)
        architecture = system.build_architecture()
        assert architecture.num_nodes == num_nodes
        pairs = architecture.node_pairs()
        expected = get_topology(topology).links(num_nodes)
        if expected is None:
            expected = [(a, b) for a in range(num_nodes)
                        for b in range(a + 1, num_nodes)]
        assert pairs == expected
        # Every pair is connected both ways round.
        for a, b in pairs:
            assert architecture.are_connected(a, b)
            assert architecture.are_connected(b, a)

    def test_grid_topology_via_config(self):
        system = SystemConfig(num_nodes=4, topology="grid-2x2")
        assert system.build_architecture().node_pairs() == [
            (0, 1), (0, 2), (1, 3), (2, 3)]


class TestRemotePairValidation:
    def test_validate_remote_pairs_passes_when_linked(self):
        architecture = DQCArchitecture(nodes=_nodes(3),
                                       links=[(0, 1), (1, 2)])
        validate_remote_pairs(architecture, [(0, 1), (1, 2), (0, 1)])

    def test_validate_remote_pairs_names_missing_links(self):
        architecture = DQCArchitecture(nodes=_nodes(3),
                                       links=[(0, 1), (1, 2)])
        with pytest.raises(TopologyError, match=r"\(0, 2\)"):
            validate_remote_pairs(architecture, [(0, 2)], context="test cell")

    def test_compile_rejects_unlinked_partition(self):
        system = SystemConfig(num_nodes=4, topology="ring")
        compiler = CellCompiler(system=system)
        with pytest.raises(TopologyError, match="topology 'ring'"):
            compiler.compile("QAOA-r4-32", "adapt_buf")

    def test_ideal_design_needs_no_interconnect(self):
        system = SystemConfig(num_nodes=4, topology="ring")
        compiler = CellCompiler(system=system)
        cell = compiler.compile("QAOA-r4-32", "ideal")
        assert cell.execute(seed=1).makespan > 0

    def test_line_topology_runs_contiguous_chain(self):
        # TLIM is a 1D chain: contiguous blocks only touch neighbours, which
        # is exactly what a line interconnect provides.
        system = SystemConfig(num_nodes=4, topology="line",
                              partition_method="contiguous")
        compiler = CellCompiler(system=system)
        cell = compiler.compile("TLIM-32", "adapt_buf")
        assert set(cell.program.remote_pairs()) <= {(0, 1), (1, 2), (2, 3)}
        assert cell.execute(seed=1).makespan > 0
