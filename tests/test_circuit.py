"""Unit tests for the QuantumCircuit container."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gate import Gate
from repro.exceptions import CircuitError


class TestConstruction:
    def test_needs_positive_register(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_builder_methods(self, bell_circuit):
        assert bell_circuit.num_gates == 2
        assert bell_circuit.count_ops() == {"h": 1, "cx": 1}

    def test_out_of_range_gate_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.cx(0, 5)

    def test_append_and_extend(self):
        circuit = QuantumCircuit(3)
        circuit.extend([Gate("h", (0,)), Gate("cx", (0, 1))])
        assert circuit.num_gates == 2

    def test_all_builders(self):
        circuit = QuantumCircuit(3)
        circuit.h(0); circuit.x(1); circuit.y(2); circuit.z(0); circuit.s(1)
        circuit.t(2); circuit.rx(0.1, 0); circuit.ry(0.2, 1); circuit.rz(0.3, 2)
        circuit.p(0.4, 0); circuit.cx(0, 1); circuit.cz(1, 2); circuit.cp(0.5, 0, 2)
        circuit.rzz(0.6, 0, 1); circuit.swap(1, 2); circuit.measure(0)
        circuit.barrier(1)
        assert circuit.num_gates == 17
        circuit.validate()


class TestQueries:
    def test_counts(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.rx(0.1, 1)
        circuit.cx(0, 1)
        circuit.rzz(0.2, 2, 3)
        circuit.measure(0)
        assert circuit.num_single_qubit_gates() == 2
        assert circuit.num_two_qubit_gates() == 2
        assert circuit.num_measurements() == 1
        assert len(circuit.two_qubit_gates()) == 2

    def test_qubits_used_and_interactions(self):
        circuit = QuantumCircuit(5)
        circuit.cx(3, 1)
        circuit.h(0)
        assert circuit.qubits_used() == (0, 1, 3)
        assert circuit.interactions() == [(1, 3)]

    def test_unit_depth(self, bell_circuit):
        assert bell_circuit.depth() == 2

    def test_weighted_depth(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        weights = {"h": 0.1, "cx": 1.0}
        assert circuit.depth(weights) == pytest.approx(1.1)

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        assert circuit.depth() == 1

    def test_measure_all(self):
        circuit = QuantumCircuit(3)
        circuit.measure_all()
        assert circuit.num_measurements() == 3


class TestTransformations:
    def test_copy_is_independent(self, bell_circuit):
        clone = bell_circuit.copy()
        clone.x(0)
        assert clone.num_gates == 3
        assert bell_circuit.num_gates == 2

    def test_compose(self, bell_circuit):
        other = QuantumCircuit(2)
        other.x(1)
        combined = bell_circuit.compose(other)
        assert combined.num_gates == 3
        with pytest.raises(CircuitError):
            bell_circuit.compose(QuantumCircuit(3))

    def test_slicing(self, bell_circuit):
        first = bell_circuit[:1]
        assert isinstance(first, QuantumCircuit)
        assert first.num_gates == 1
        assert bell_circuit[1].name == "cx"

    def test_remap_qubits(self, bell_circuit):
        remapped = bell_circuit.remap_qubits({0: 1, 1: 0})
        assert remapped.gates[1].qubits == (1, 0)

    def test_remap_into_larger_register(self, bell_circuit):
        remapped = bell_circuit.remap_qubits({0: 4, 1: 5}, num_qubits=6)
        assert remapped.num_qubits == 6
        assert remapped.gates[1].qubits == (4, 5)

    def test_relabel_gates(self, bell_circuit):
        labelled = bell_circuit.relabel_gates({1: "remote"})
        assert labelled.gates[1].is_remote
        assert not bell_circuit.gates[1].is_remote

    def test_without_directives(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.measure(0)
        circuit.barrier(1)
        assert circuit.without_directives().num_gates == 1

    def test_inverse_round_trip_structure(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.rz(0.3, 0)
        circuit.cx(0, 1)
        circuit.t(1)
        inverse = circuit.inverse()
        assert [g.name for g in inverse.gates] == ["tdg", "cx", "rz", "h"]
        assert inverse.gates[2].params == (-0.3,)

    def test_inverse_rejects_measurement(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0)
        with pytest.raises(CircuitError):
            circuit.inverse()

    def test_equality(self, bell_circuit):
        other = QuantumCircuit(2, name="different-name")
        other.h(0)
        other.cx(0, 1)
        assert other == bell_circuit
        other.x(1)
        assert other != bell_circuit
