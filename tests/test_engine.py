"""Tests for the compile-once / execute-many engine."""

import pytest

import repro.runtime.executor as executor_module
from repro.benchmarks import tlim_circuit
from repro.core import DQCSimulator, ExperimentConfig, ExperimentRunner, SystemConfig
from repro.engine import (
    ArtifactCache,
    CellCompiler,
    ExecutionBackend,
    ExperimentEngine,
    ProcessPoolBackend,
    SerialBackend,
    fingerprint,
    get_backend,
    list_backends,
    register_backend,
)
from repro.engine.backends import ExecutionTask
from repro.exceptions import ConfigurationError


@pytest.fixture
def tlim_system() -> SystemConfig:
    return SystemConfig(data_qubits_per_node=16, comm_qubits_per_node=4,
                        buffer_qubits_per_node=4)


@pytest.fixture
def small_config() -> ExperimentConfig:
    return ExperimentConfig(
        benchmarks=("TLIM-32",),
        designs=("original", "adapt_buf"),
        num_runs=3,
        base_seed=5,
        system=SystemConfig(data_qubits_per_node=16, comm_qubits_per_node=4,
                            buffer_qubits_per_node=4),
    )


class CountingBackend(ExecutionBackend):
    """Serial backend that records how many tasks it was handed."""

    name = "counting"

    def __init__(self):
        self.task_log = []

    def execute(self, tasks):
        tasks = list(tasks)
        self.task_log.append(len(tasks))
        return [task.run() for task in tasks]


# ----------------------------------------------------------------------
# artifact cache
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_hit_miss_accounting(self):
        cache = ArtifactCache()
        assert cache.get("cell", "k") is None
        cache.put("cell", "k", "artifact")
        assert cache.get("cell", "k") == "artifact"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)
        assert cache.stats()["entries"] == 1

    def test_namespaces_are_disjoint(self):
        cache = ArtifactCache()
        cache.put("program", "k", "p")
        cache.put("cell", "k", "c")
        assert cache.get("program", "k") == "p"
        assert cache.get("cell", "k") == "c"
        assert cache.count("program") == 1
        assert cache.count() == 2

    def test_fifo_eviction(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("cell", "a", 1)
        cache.put("cell", "b", 2)
        cache.put("cell", "c", 3)
        assert len(cache) == 2
        assert cache.get("cell", "a") is None
        assert cache.get("cell", "c") == 3

    def test_overwrite_at_capacity_does_not_evict_others(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("cell", "a", 1)
        cache.put("cell", "b", 2)
        cache.put("cell", "b", 22)  # overwrite must not evict "a"
        assert cache.get("cell", "a") == 1
        assert cache.get("cell", "b") == 22

    def test_clear_resets_stats(self):
        cache = ArtifactCache()
        cache.put("cell", "a", 1)
        cache.get("cell", "a")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)

    def test_fingerprint_sensitivity(self):
        base = SystemConfig()
        same = SystemConfig()
        tweaked = base.with_comm_and_buffer(5, 5)
        assert fingerprint(base) == fingerprint(same)
        assert fingerprint(base) != fingerprint(tweaked)

    def test_fingerprint_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            fingerprint(object())


# ----------------------------------------------------------------------
# compile stage
# ----------------------------------------------------------------------
class TestCellCompiler:
    def test_cell_cached_by_configuration(self, tlim_system):
        compiler = CellCompiler(system=tlim_system)
        first = compiler.compile("TLIM-32", "adapt_buf")
        second = compiler.compile("TLIM-32", "adapt_buf")
        assert first is second
        assert compiler.cache.hits >= 1

    def test_distinct_parameters_compile_distinct_cells(self, tlim_system):
        compiler = CellCompiler(system=tlim_system)
        base = compiler.compile("TLIM-32", "adapt_buf")
        other_design = compiler.compile("TLIM-32", "original")
        other_length = compiler.compile("TLIM-32", "adapt_buf", segment_length=2)
        assert base is not other_design
        assert base is not other_length
        assert other_length.lookup is not base.lookup

    def test_adaptive_cell_carries_lookup(self, tlim_system):
        compiler = CellCompiler(system=tlim_system)
        adaptive = compiler.compile("TLIM-32", "adapt_buf")
        plain = compiler.compile("TLIM-32", "sync_buf")
        assert adaptive.lookup is not None
        assert plain.lookup is None

    def test_program_shared_across_designs(self, tlim_system):
        compiler = CellCompiler(system=tlim_system)
        a = compiler.compile("TLIM-32", "adapt_buf")
        b = compiler.compile("TLIM-32", "original")
        assert a.program is b.program

    def test_program_reused_across_comm_sweep_steps(self):
        cache = ArtifactCache()
        few = CellCompiler(
            system=SystemConfig(data_qubits_per_node=16, comm_qubits_per_node=4,
                                buffer_qubits_per_node=4),
            cache=cache,
        )
        many = CellCompiler(
            system=SystemConfig(data_qubits_per_node=16, comm_qubits_per_node=8,
                                buffer_qubits_per_node=8),
            cache=cache,
        )
        cell_few = few.compile("TLIM-32", "adapt_buf")
        cell_many = many.compile("TLIM-32", "adapt_buf")
        # The partitioned program survives the sweep step ...
        assert cell_few.program is cell_many.program
        assert cache.count("program") == 1
        # ... but the schedule lookup (segment length depends on the
        # communication-qubit count) is recompiled.
        assert cell_few.lookup is not cell_many.lookup
        assert cache.count("cell") == 2

    def test_anonymous_circuit_compiled_once(self, small_system):
        compiler = CellCompiler(system=small_system)
        circuit = tlim_circuit(12, num_steps=1)
        first = compiler.compile(circuit, "adapt_buf")
        second = compiler.compile(circuit, "adapt_buf")
        assert first is second

    def test_mutated_circuit_is_recompiled(self, small_system):
        # Regression: programs are keyed by gate content, so mutating a
        # circuit between calls must not replay the stale partition.
        compiler = CellCompiler(system=small_system)
        circuit = tlim_circuit(12, num_steps=1)
        before = compiler.compile(circuit, "original")
        circuit.cx(0, 1)
        after = compiler.compile(circuit, "original")
        assert after is not before
        assert after.program is not before.program
        assert after.program.circuit.num_gates == before.program.circuit.num_gates + 1

    def test_equal_circuits_share_a_program(self, small_system):
        compiler = CellCompiler(system=small_system)
        a = compiler.compile(tlim_circuit(12, num_steps=1), "original")
        b = compiler.compile(tlim_circuit(12, num_steps=1), "original")
        assert a is b

    def test_capacity_still_enforced(self, small_system):
        compiler = CellCompiler(system=small_system)
        with pytest.raises(ConfigurationError):
            compiler.resolve_program(tlim_circuit(40, num_steps=1))

    def test_invalid_circuit_type_rejected(self, small_system):
        compiler = CellCompiler(system=small_system)
        with pytest.raises(ConfigurationError):
            compiler.resolve_program(42)


class TestCompileOnce:
    def test_lookup_built_once_per_cell_regardless_of_num_runs(
            self, small_config, monkeypatch):
        calls = []
        original = executor_module.build_lookup_table

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(executor_module, "build_lookup_table", counting)
        engine = ExperimentEngine(small_config)
        results = engine.run_cell("TLIM-32", "adapt_buf")
        assert len(results) == small_config.num_runs
        assert len(calls) == 1

    def test_simulator_reuses_lookup_across_seeds(self, monkeypatch):
        calls = []
        original = executor_module.build_lookup_table

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(executor_module, "build_lookup_table", counting)
        simulator = DQCSimulator(
            SystemConfig(data_qubits_per_node=16, comm_qubits_per_node=4,
                         buffer_qubits_per_node=4)
        )
        for seed in (1, 2, 3):
            simulator.simulate("TLIM-32", design="adapt_buf", seed=seed)
        assert len(calls) == 1

    def test_variant_histogram_is_per_run(self, small_config):
        engine = ExperimentEngine(small_config)
        results = engine.run_cell("TLIM-32", "adapt_buf")
        totals = [sum(r.variant_histogram.values()) for r in results]
        # Each run logs one decision per segment; a shared lookup must not
        # leak decisions from earlier seeds into later histograms.
        assert len(set(totals)) == 1 and totals[0] >= 1


# ----------------------------------------------------------------------
# execute stage
# ----------------------------------------------------------------------
class TestBackends:
    def test_get_backend_resolution(self):
        assert isinstance(get_backend(None), SerialBackend)
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("process"), ProcessPoolBackend)
        instance = SerialBackend()
        assert get_backend(instance) is instance

    def test_get_backend_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_backend("quantum-cloud")
        with pytest.raises(ConfigurationError):
            get_backend(3.14)

    def test_register_backend(self):
        register_backend("counting-test", CountingBackend)
        assert "counting-test" in list_backends()
        assert isinstance(get_backend("counting-test"), CountingBackend)

    def test_process_backend_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(max_workers=0)
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(chunksize=0)

    def test_empty_task_list(self):
        assert SerialBackend().execute([]) == []
        with ProcessPoolBackend(max_workers=1) as backend:
            assert backend.execute([]) == []

    def test_serial_and_process_backends_are_deterministic(self, small_config):
        serial_engine = ExperimentEngine(small_config, backend="serial")
        serial_results = serial_engine.execute_cells(serial_engine.compile_grid())
        with ProcessPoolBackend(max_workers=2) as backend:
            process_engine = ExperimentEngine(small_config, backend=backend)
            process_results = process_engine.execute_cells(
                process_engine.compile_grid()
            )
        assert len(serial_results) == len(process_results)
        for serial_cell, process_cell in zip(serial_results, process_results):
            for serial_run, process_run in zip(serial_cell, process_cell):
                assert serial_run.seed == process_run.seed
                assert serial_run.makespan == process_run.makespan
                assert serial_run.fidelity == process_run.fidelity
                assert (serial_run.variant_histogram
                        == process_run.variant_histogram)


# ----------------------------------------------------------------------
# pipeline
# ----------------------------------------------------------------------
class TestExperimentEngine:
    def test_run_submits_whole_grid_as_one_batch(self, small_config):
        backend = CountingBackend()
        engine = ExperimentEngine(small_config, backend=backend)
        comparisons = engine.run()
        cells = len(small_config.benchmarks) * len(small_config.designs)
        assert backend.task_log == [cells * small_config.num_runs]
        assert set(comparisons) == set(small_config.benchmarks)

    def test_results_grouped_in_seed_order(self, small_config):
        engine = ExperimentEngine(small_config)
        cells = engine.compile_grid()
        grouped = engine.execute_cells(cells)
        assert len(grouped) == len(cells)
        for cell, results in zip(cells, grouped):
            assert [r.seed for r in results] == small_config.seeds()
            assert all(r.design == cell.design.name for r in results)

    def test_run_matches_run_cell(self, small_config):
        comparisons = ExperimentEngine(small_config).run()
        engine = ExperimentEngine(small_config)
        for design in small_config.designs:
            cell_results = engine.run_cell("TLIM-32", design)
            summary = comparisons["TLIM-32"].design(design)
            assert summary.depth.mean == pytest.approx(
                sum(r.makespan for r in cell_results) / len(cell_results)
            )

    def test_engine_matches_legacy_per_seed_simulation(self, small_config):
        engine = ExperimentEngine(small_config)
        engine_results = engine.run_cell("TLIM-32", "adapt_buf")
        simulator = DQCSimulator(system=small_config.system)
        for result in engine_results:
            legacy = simulator.simulate("TLIM-32", design="adapt_buf",
                                        seed=result.seed)
            assert legacy.makespan == result.makespan
            assert legacy.fidelity == result.fidelity

    def test_engine_context_manager_closes_backend(self, small_config):
        with ExperimentEngine(small_config,
                              backend=ProcessPoolBackend(max_workers=1)) as engine:
            results = engine.run_cell("TLIM-32", "original")
            assert len(results) == small_config.num_runs
        assert engine.backend._pool is None


class TestExperimentRunnerIntegration:
    def test_runner_uses_engine_and_shares_compiler(self, small_config):
        runner = ExperimentRunner(small_config)
        assert runner.simulator.compiler is runner.engine.compiler
        comparison = runner.run_benchmark("TLIM-32")
        assert comparison.design("adapt_buf").num_runs == small_config.num_runs
        # An ad-hoc simulate() after the grid run hits the grid's artifacts.
        hits_before = runner.engine.compiler.cache.hits
        runner.simulator.simulate("TLIM-32", design="adapt_buf", seed=99)
        assert runner.engine.compiler.cache.hits > hits_before

    def test_runner_accepts_backend_name(self, small_config):
        runner = ExperimentRunner(small_config, backend="serial")
        results = runner.run_cell("TLIM-32", "original")
        assert [r.seed for r in results] == small_config.seeds()

    def test_helper_closes_backends_it_created(self, small_config):
        from repro.core import run_design_comparison

        class RecordingBackend(CountingBackend):
            closed = False

            def close(self):
                self.closed = True

        created = []

        def factory():
            backend = RecordingBackend()
            created.append(backend)
            return backend

        register_backend("recording-test", factory)
        run_design_comparison(["TLIM-32"], designs=["ideal"], num_runs=1,
                              system=small_config.system,
                              backend="recording-test")
        assert created and created[0].closed  # name -> helper owns and closes

        provided = RecordingBackend()
        run_design_comparison(["TLIM-32"], designs=["ideal"], num_runs=1,
                              system=small_config.system, backend=provided)
        assert not provided.closed  # caller-provided instance stays open


class TestSimulatorSatellites:
    def test_last_executor_none_before_simulate(self, small_system):
        simulator = DQCSimulator(system=small_system)
        assert simulator.last_executor is None

    def test_ideal_reference_before_simulate(self, small_system):
        # Regression: ideal_reference() used to rely on simulate() having
        # set last_executor; it must work on a fresh simulator.
        simulator = DQCSimulator(system=small_system)
        result = simulator.ideal_reference(tlim_circuit(12, num_steps=1))
        assert result.design == "ideal"
        assert simulator.last_executor is not None

    def test_task_run_matches_cell_execute(self, tlim_system):
        compiler = CellCompiler(system=tlim_system)
        cell = compiler.compile("TLIM-32", "original")
        task = ExecutionTask(cell, seed=7)
        direct = cell.execute(seed=7)
        via_task = task.run()
        assert via_task.makespan == direct.makespan
        assert via_task.fidelity == direct.fidelity
