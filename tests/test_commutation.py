"""Unit tests for gate commutation analysis."""

import numpy as np
import pytest

from repro.circuits.commutation import CommutationTable, commutes_with_all, gates_commute
from repro.circuits.gate import Gate
from repro.exceptions import GateError


def _matrix_commute(gate_a, gate_b):
    """Brute-force commutation check used as ground truth."""
    from repro.circuits.commutation import _embed

    qubits = sorted(set(gate_a.qubits) | set(gate_b.qubits))
    a = _embed(gate_a.matrix(), gate_a.qubits, qubits)
    b = _embed(gate_b.matrix(), gate_b.qubits, qubits)
    return np.allclose(a @ b, b @ a)


class TestBasicRules:
    def test_disjoint_gates_commute(self):
        assert gates_commute(Gate("cx", (0, 1)), Gate("cx", (2, 3)))

    def test_diagonal_gates_commute(self):
        assert gates_commute(Gate("rzz", (0, 1), (0.5,)), Gate("cz", (1, 2)))
        assert gates_commute(Gate("cp", (0, 1), (0.3,)), Gate("rz", (1,), (0.2,)))

    def test_identical_gates_commute(self):
        gate = Gate("cx", (0, 1))
        assert gates_commute(gate, gate)

    def test_cnot_shared_control_commutes(self):
        assert gates_commute(Gate("cx", (0, 1)), Gate("cx", (0, 2)))

    def test_cnot_shared_target_commutes(self):
        assert gates_commute(Gate("cx", (0, 2)), Gate("cx", (1, 2)))

    def test_cnot_control_target_conflict(self):
        assert not gates_commute(Gate("cx", (0, 1)), Gate("cx", (1, 2)))

    def test_z_like_on_cnot_control(self):
        assert gates_commute(Gate("rz", (0,), (0.1,)), Gate("cx", (0, 1)))
        assert gates_commute(Gate("t", (0,)), Gate("cx", (0, 1)))

    def test_x_like_on_cnot_target(self):
        assert gates_commute(Gate("x", (1,)), Gate("cx", (0, 1)))
        assert gates_commute(Gate("rx", (1,), (0.4,)), Gate("cx", (0, 1)))

    def test_h_on_cnot_does_not_commute(self):
        assert not gates_commute(Gate("h", (0,)), Gate("cx", (0, 1)))
        assert not gates_commute(Gate("h", (1,)), Gate("cx", (0, 1)))

    def test_directives_block_same_qubit(self):
        assert not gates_commute(Gate("measure", (0,)), Gate("h", (0,)))
        assert gates_commute(Gate("measure", (0,)), Gate("h", (1,)))

    def test_cx_and_diagonal_shared_control(self):
        assert gates_commute(Gate("cx", (0, 1)), Gate("rzz", (0, 2), (0.3,)))
        assert not gates_commute(Gate("cx", (0, 1)), Gate("rzz", (1, 2), (0.3,)))


class TestAgainstMatrices:
    CASES = [
        (Gate("rzz", (0, 1), (0.7,)), Gate("rzz", (1, 2), (0.4,))),
        (Gate("cx", (0, 1)), Gate("cz", (0, 1))),
        (Gate("cx", (0, 1)), Gate("cz", (1, 2))),
        (Gate("rx", (0,), (0.5,)), Gate("rzz", (0, 1), (0.4,))),
        (Gate("cp", (0, 1), (0.9,)), Gate("cx", (1, 2))),
        (Gate("s", (1,)), Gate("cp", (0, 1), (0.2,))),
        (Gate("swap", (0, 1)), Gate("cx", (0, 1))),
        (Gate("y", (1,)), Gate("cx", (0, 1))),
    ]

    @pytest.mark.parametrize("gate_a,gate_b", CASES)
    def test_rule_matches_matrix(self, gate_a, gate_b):
        assert gates_commute(gate_a, gate_b) == _matrix_commute(gate_a, gate_b)

    def test_exact_fallback_disabled_is_conservative(self):
        # swap/cx share both qubits and have no symbolic rule.
        gate_a = Gate("swap", (0, 1))
        gate_b = Gate("iswap", (0, 1))
        assert gates_commute(gate_a, gate_b, exact_fallback=False) is False


class TestHelpers:
    def test_commutes_with_all(self):
        remote = Gate("rzz", (0, 1), (0.5,), label="remote")
        others = [Gate("rz", (0,), (0.1,)), Gate("cz", (1, 2))]
        assert commutes_with_all(remote, others)
        assert not commutes_with_all(Gate("h", (0,)), others + [Gate("rz", (0,), (0.2,))])

    def test_commutation_table(self):
        gates = [Gate("h", (0,)), Gate("cx", (0, 1)), Gate("rz", (1,), (0.3,))]
        table = CommutationTable(gates)
        assert table.commute(0, 0)
        assert table.commute(1, 2) is False  # rz on target of cx
        # Cached second query.
        assert table.commute(2, 1) is False
        assert table.cache_size == 1
        assert table.can_move_before(2, [1]) is False

    def test_commutation_table_range_check(self):
        table = CommutationTable([Gate("h", (0,))])
        with pytest.raises(GateError):
            table.commute(0, 5)
