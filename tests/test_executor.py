"""Unit and behaviour tests for the discrete-event design executor."""

import pytest

from repro.benchmarks import qft_circuit, tlim_circuit
from repro.circuits import QuantumCircuit
from repro.partitioning import Partition, distribute_circuit
from repro.runtime import DesignExecutor, execute_design, get_design
from repro.exceptions import ArchitectureError, RuntimeSimulationError


@pytest.fixture
def small_program(small_architecture):
    circuit = tlim_circuit(12, num_steps=2)
    return distribute_circuit(circuit, num_nodes=2, seed=0)


class TestIdealExecution:
    def test_ideal_depth_matches_weighted_critical_path(self, small_architecture,
                                                        small_program):
        result = execute_design(small_program, small_architecture, "ideal")
        weights = {
            name: small_architecture.gate_times.duration_of(name)
            for name in small_program.circuit.count_ops()
        }
        assert result.makespan == pytest.approx(
            small_program.circuit.depth(weights)
        )
        assert result.num_remote == 0

    def test_ideal_has_highest_fidelity(self, small_architecture, small_program):
        ideal = execute_design(small_program, small_architecture, "ideal")
        async_buf = execute_design(small_program, small_architecture, "async_buf",
                                   seed=1)
        assert ideal.fidelity >= async_buf.fidelity

    def test_ideal_counts_remote_gates_as_local(self, small_architecture,
                                                small_program):
        result = execute_design(small_program, small_architecture, "ideal")
        assert result.num_local_two_qubit == small_program.circuit.num_two_qubit_gates()


class TestDistributedExecution:
    def test_remote_gates_recorded(self, small_architecture, small_program):
        result = execute_design(small_program, small_architecture, "async_buf",
                                seed=2)
        assert result.num_remote == small_program.remote_gate_count()
        assert len(result.remote_records) == result.num_remote
        assert all(r.link_fidelity > 0.25 for r in result.remote_records)

    def test_remote_gate_starts_after_ready(self, small_architecture, small_program):
        result = execute_design(small_program, small_architecture, "sync_buf",
                                seed=2)
        for record in result.remote_records:
            assert record.start_time >= record.ready_time - 1e-9
            assert record.finish_time > record.start_time

    def test_depth_at_least_ideal(self, small_architecture, small_program):
        ideal = execute_design(small_program, small_architecture, "ideal")
        for design in ("original", "sync_buf", "async_buf", "adapt_buf", "init_buf"):
            result = execute_design(small_program, small_architecture, design, seed=3)
            assert result.makespan >= ideal.makespan - 1e-9

    def test_buffered_not_slower_than_original(self, small_architecture,
                                               small_program):
        original = execute_design(small_program, small_architecture, "original",
                                  seed=4)
        buffered = execute_design(small_program, small_architecture, "async_buf",
                                  seed=4)
        assert buffered.makespan <= original.makespan + 1e-9

    def test_reproducible_for_fixed_seed(self, small_architecture, small_program):
        first = execute_design(small_program, small_architecture, "async_buf", seed=9)
        second = execute_design(small_program, small_architecture, "async_buf", seed=9)
        assert first.makespan == pytest.approx(second.makespan)
        assert first.fidelity == pytest.approx(second.fidelity)

    def test_different_seeds_vary(self, small_architecture, small_program):
        depths = {
            round(execute_design(small_program, small_architecture, "original",
                                 seed=s).makespan, 6)
            for s in range(6)
        }
        assert len(depths) > 1

    def test_trace_collection(self, small_architecture, small_program):
        executor = DesignExecutor(small_architecture, "async_buf", seed=1,
                                  collect_trace=True)
        result = executor.run(small_program)
        trace = executor.last_trace
        assert trace is not None
        assert len(trace) == small_program.circuit.num_gates
        assert trace.is_consistent()
        assert trace.makespan() == pytest.approx(result.makespan)

    def test_epr_statistics_populated(self, small_architecture, small_program):
        result = execute_design(small_program, small_architecture, "async_buf",
                                seed=5)
        assert result.epr_statistics["generated"] >= result.num_remote
        consumed = (result.epr_statistics["consumed_from_buffer"]
                    + result.epr_statistics["consumed_direct"])
        assert consumed == result.num_remote

    def test_init_buf_prefills(self, small_architecture, small_program):
        result = execute_design(small_program, small_architecture, "init_buf", seed=5)
        # With pre-filled buffers the first remote gate should not wait.
        first_record = min(result.remote_records, key=lambda r: r.ready_time)
        assert first_record.wait_time == pytest.approx(0.0, abs=1e-9)


class TestAdaptiveExecution:
    def test_adaptive_records_decisions(self, small_architecture, small_program):
        executor = DesignExecutor(small_architecture, "adapt_buf", seed=2)
        result = executor.run(small_program)
        assert sum(result.variant_histogram.values()) >= 1

    def test_adaptive_preserves_gate_count(self, small_architecture, small_program):
        result = execute_design(small_program, small_architecture, "adapt_buf", seed=2)
        assert result.num_remote == small_program.remote_gate_count()
        total_gates = (result.num_single_qubit + result.num_local_two_qubit
                       + result.num_remote)
        assert total_gates == small_program.circuit.num_gates

    def test_segment_length_override(self, small_architecture, small_program):
        executor = DesignExecutor(small_architecture, "adapt_buf", seed=2,
                                  segment_length=1)
        result = executor.run(small_program)
        assert sum(result.variant_histogram.values()) >= small_program.remote_gate_count()


class TestValidation:
    def test_capacity_violation_rejected(self, small_architecture):
        # 14 qubits cannot fit on 2 nodes with 6 data qubits each.
        circuit = tlim_circuit(14, num_steps=1)
        program = distribute_circuit(circuit, num_nodes=2, seed=0)
        with pytest.raises(ArchitectureError):
            execute_design(program, small_architecture, "async_buf")

    def test_remote_label_consistency_checked(self, small_architecture):
        circuit = QuantumCircuit(4)
        circuit.add_gate("cx", (0, 1), label="remote")  # same node after partition
        program = distribute_circuit(
            circuit, partition=Partition.from_blocks([[0, 1], [2, 3]])
        )
        # distribute_circuit relabels, so build a broken program manually.
        from repro.partitioning.assigner import DistributedProgram

        broken = DistributedProgram(circuit=circuit,
                                    partition=Partition.from_blocks([[0, 1], [2, 3]]))
        with pytest.raises(RuntimeSimulationError):
            execute_design(broken, small_architecture, "async_buf")
        # The correctly labelled program runs fine.
        execute_design(program, small_architecture, "async_buf")

    def test_too_many_program_nodes(self, small_architecture):
        circuit = tlim_circuit(8, num_steps=1)
        program = distribute_circuit(circuit, num_nodes=4, seed=0)
        with pytest.raises(RuntimeSimulationError):
            execute_design(program, small_architecture, "async_buf")
