"""Unit tests for the hardware model (qubits, nodes, architecture, parameters)."""

import pytest

from repro.hardware import (
    DQCArchitecture,
    GateFidelities,
    GateTimes,
    HeraldedLinkModel,
    OPERATION_TABLE,
    PhysicalConstants,
    PhysicalQubit,
    QPUNode,
    QubitRole,
    two_node_architecture,
)
from repro.exceptions import ArchitectureError, ConfigurationError


class TestPhysicalQubit:
    def test_occupy_and_release(self):
        qubit = PhysicalQubit(0, 0, QubitRole.DATA)
        finish = qubit.occupy(1.0, 2.0)
        assert finish == 3.0
        assert not qubit.is_free(2.0)
        assert qubit.is_free(3.0)
        assert qubit.total_busy_time == 2.0

    def test_double_booking_rejected(self):
        qubit = PhysicalQubit(0, 0, QubitRole.DATA)
        qubit.occupy(0.0, 5.0)
        with pytest.raises(ArchitectureError):
            qubit.occupy(2.0, 1.0)

    def test_idle_time(self):
        qubit = PhysicalQubit(0, 0, QubitRole.BUFFER)
        qubit.occupy(0.0, 1.0)
        assert qubit.idle_time(4.0) == pytest.approx(3.0)

    def test_reset(self):
        qubit = PhysicalQubit(0, 1, QubitRole.COMMUNICATION)
        qubit.occupy(0.0, 1.0)
        qubit.reset_clock()
        assert qubit.is_free(0.0)
        assert qubit.total_busy_time == 0.0

    def test_identifier(self):
        assert PhysicalQubit(1, 3, QubitRole.BUFFER).identifier == "n1/buffer3"

    def test_invalid_indices(self):
        with pytest.raises(ArchitectureError):
            PhysicalQubit(-1, 0, QubitRole.DATA)


class TestQPUNode:
    def test_pools_built(self):
        node = QPUNode(0, 16, 10, 10)
        assert len(node.data_qubits) == 16
        assert len(node.comm_qubits) == 10
        assert len(node.buffer_qubits) == 10
        assert node.total_qubits == 36

    def test_describe(self):
        assert QPUNode(1, 4, 2, 3).describe() == {
            "node": 1, "data": 4, "communication": 2, "buffer": 3,
        }

    def test_data_qubit_lookup(self):
        node = QPUNode(0, 4, 1, 1)
        assert node.data_qubit(3).index == 3
        with pytest.raises(ArchitectureError):
            node.data_qubit(4)

    def test_invalid_counts(self):
        with pytest.raises(ArchitectureError):
            QPUNode(0, 0, 1, 1)
        with pytest.raises(ArchitectureError):
            QPUNode(0, 4, -1, 0)

    def test_utilisation(self):
        node = QPUNode(0, 2, 1, 1)
        node.data_qubits[0].occupy(0.0, 5.0)
        assert node.data_utilisation(10.0) == pytest.approx(0.25)


class TestArchitecture:
    def test_two_node_defaults(self, paper_architecture):
        assert paper_architecture.num_nodes == 2
        assert paper_architecture.total_data_qubits == 32
        assert paper_architecture.total_comm_qubits == 20
        assert paper_architecture.comm_pairs_between(0, 1) == 10
        assert paper_architecture.buffer_capacity_between(0, 1) == 10

    def test_node_pairs_and_connectivity(self, paper_architecture):
        assert paper_architecture.node_pairs() == [(0, 1)]
        assert paper_architecture.are_connected(0, 1)
        assert not paper_architecture.are_connected(0, 0)

    def test_decoherence_rate(self, paper_architecture):
        # 300 ns CNOT, 150 us decoherence -> kappa = 0.002 per unit.
        assert paper_architecture.decoherence_rate == pytest.approx(0.002)

    def test_capacity_validation(self, paper_architecture):
        paper_architecture.validate_capacity([16, 16])
        with pytest.raises(ArchitectureError):
            paper_architecture.validate_capacity([17, 15])
        with pytest.raises(ArchitectureError):
            paper_architecture.validate_capacity([16])

    def test_explicit_links(self):
        nodes = [QPUNode(i, 4, 2, 2) for i in range(3)]
        arch = DQCArchitecture(nodes=nodes, links=[(0, 1), (1, 2)])
        assert arch.are_connected(0, 1)
        assert not arch.are_connected(0, 2)

    def test_invalid_node_order(self):
        with pytest.raises(ArchitectureError):
            DQCArchitecture(nodes=[QPUNode(1, 4, 1, 1)])

    def test_describe(self, paper_architecture):
        summary = paper_architecture.describe()
        assert summary["psucc"] == 0.4
        assert summary["epr_cycle"] == 10.0


class TestParameters:
    def test_table2_values(self):
        assert OPERATION_TABLE["single_qubit"].latency == pytest.approx(0.1)
        assert OPERATION_TABLE["local_cnot"].fidelity == pytest.approx(0.999)
        assert OPERATION_TABLE["measurement"].latency == pytest.approx(5.0)
        assert OPERATION_TABLE["epr_preparation"].latency == pytest.approx(10.0)

    def test_gate_time_lookup(self):
        times = GateTimes()
        assert times.duration_of("h") == pytest.approx(0.1)
        assert times.duration_of("cx") == pytest.approx(1.0)
        assert times.duration_of("rzz") == pytest.approx(1.0)
        assert times.duration_of("measure") == pytest.approx(5.0)
        assert times.duration_of("barrier") == 0.0

    def test_remote_latency_with_frame_tracking(self):
        assert GateTimes().remote_gate_latency() == pytest.approx(1.2)
        no_frame = GateTimes(pauli_frame_tracking=False)
        assert no_frame.remote_gate_latency() == pytest.approx(6.2)

    def test_fidelity_lookup(self):
        fidelities = GateFidelities()
        assert fidelities.fidelity_of("rx") == pytest.approx(0.9999)
        assert fidelities.fidelity_of("cx") == pytest.approx(0.999)
        assert fidelities.fidelity_of("measure") == pytest.approx(0.998)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            GateTimes(local_cnot=-1.0)
        with pytest.raises(ConfigurationError):
            GateFidelities(local_cnot=0.0)
        with pytest.raises(ConfigurationError):
            PhysicalConstants(epr_success_probability=0.0)

    def test_physical_constants_conversion(self):
        physics = PhysicalConstants()
        assert physics.decoherence_rate_per_unit == pytest.approx(0.002)
        assert physics.seconds(10.0) == pytest.approx(3.0e-6)


class TestHeraldedLinkModel:
    def test_success_probability_bounded_by_half(self):
        model = HeraldedLinkModel()
        assert 0.0 < model.success_probability <= 0.5

    def test_short_fiber_has_high_transmission(self):
        model = HeraldedLinkModel(fiber_length_m=10.0)
        assert model.transmission_efficiency > 0.999

    def test_longer_fiber_lowers_success(self):
        near = HeraldedLinkModel(fiber_length_m=10.0)
        far = HeraldedLinkModel(fiber_length_m=10000.0)
        assert far.success_probability < near.success_probability

    def test_cycle_time_components(self):
        model = HeraldedLinkModel()
        assert model.photon_travel_time_ns == pytest.approx(50.0)
        assert model.cycle_time_ns > model.emission_cutoff_ns
        # Roughly ten local CNOTs, consistent with T_EG = 10 in Table II.
        assert model.cycle_time_units(PhysicalConstants()) == pytest.approx(
            10.0, rel=0.05
        )

    def test_bsm_efficiency_bound(self):
        with pytest.raises(ConfigurationError):
            HeraldedLinkModel(bsm_efficiency=0.6)
