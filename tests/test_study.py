"""Tests for the declarative Study API (grids, plans, flat results)."""

import json

import pytest

from repro.core import ExperimentConfig, SystemConfig, run_comm_qubit_sweep, run_design_comparison
from repro.core.results import BenchmarkComparison, DesignSummary
from repro.engine import ArtifactCache, ExperimentEngine
from repro.exceptions import ConfigurationError
from repro.runtime import get_design
from repro.study import Axis, ExecutionPlan, GridSpec, ResultSet, RunRecord, Study
from repro.study.plan import PlanCell

SMALL_SYSTEM = SystemConfig(
    data_qubits_per_node=16, comm_qubits_per_node=4, buffer_qubits_per_node=4
)


# ----------------------------------------------------------------------
# axes and grids
# ----------------------------------------------------------------------
class TestAxis:
    def test_single_field_points(self):
        axis = Axis("epr_success_probability", [0.2, 0.4])
        assert axis.size == 2
        assert list(axis.points()) == [
            {"epr_success_probability": 0.2},
            {"epr_success_probability": 0.4},
        ]

    def test_zipped_fields_points(self):
        axis = Axis(("comm_qubits_per_node", "buffer_qubits_per_node"),
                    [(4, 4), (8, 8)])
        assert list(axis.points())[1] == {
            "comm_qubits_per_node": 8, "buffer_qubits_per_node": 8,
        }

    def test_zipped_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Axis(("a", "b"), [(1, 2), (3,)])

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            Axis("seed", [])

    def test_string_values_rejected(self):
        # A bare string would iterate character by character.
        with pytest.raises(ConfigurationError):
            Axis("benchmark", "TLIM-32")

    def test_spec_round_trip(self):
        axis = Axis(("a", "b"), [(1, 2), (3, 4)])
        rebuilt = Axis.from_spec(axis.to_spec())
        assert rebuilt == axis


class TestGridSpec:
    def test_cartesian_size_and_order(self):
        grid = GridSpec([Axis("a", [1, 2]), Axis("b", ["x", "y", "z"])])
        points = list(grid.points())
        assert grid.size == len(points) == 6
        # First axis is the outermost loop.
        assert points[0] == {"a": 1, "b": "x"}
        assert points[3] == {"a": 2, "b": "x"}

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            GridSpec([Axis("a", [1]), Axis(("a", "b"), [(1, 2)])])

    def test_axis_lookup(self):
        grid = GridSpec([Axis(("a", "b"), [(1, 2)])])
        assert grid.axis("b").fields == ("a", "b")
        with pytest.raises(ConfigurationError):
            grid.axis("c")


# ----------------------------------------------------------------------
# study construction and plans
# ----------------------------------------------------------------------
class TestStudyPlan:
    def test_plan_is_lazy_and_counts_tasks(self):
        study = Study(benchmarks=["TLIM-32"], designs=["ideal", "original"],
                      num_runs=3, system=SMALL_SYSTEM)
        plan = study.plan()
        assert isinstance(plan, ExecutionPlan)
        assert not plan.expanded
        assert len(plan) == 2
        assert plan.expanded
        assert plan.num_tasks == 6

    def test_plan_deduplicates_repeated_points(self):
        study = Study(benchmarks=["TLIM-32"], designs=["ideal"],
                      axes={"comm_qubits_per_node": [4, 4, 8]},
                      num_runs=1, system=SMALL_SYSTEM)
        plan = study.plan()
        assert len(plan) == 2
        assert plan.duplicates_dropped == 1

    def test_system_axes_produce_variants(self):
        study = Study(benchmarks=["TLIM-32"], designs=["ideal"],
                      axes={"epr_success_probability": [0.2, 0.8]},
                      num_runs=1, system=SMALL_SYSTEM)
        systems = study.plan().systems()
        assert [s.epr_success_probability for s in systems] == [0.2, 0.8]
        # Unvaried fields come from the base system.
        assert all(s.comm_qubits_per_node == 4 for s in systems)

    def test_seed_axis_overrides_num_runs(self):
        study = Study(benchmarks=["TLIM-32"], designs=["ideal"],
                      axes={"seed": [7, 9]}, num_runs=50, system=SMALL_SYSTEM)
        assert study.seeds() == [7, 9]
        assert study.plan().num_tasks == 2

    def test_unknown_axis_field_rejected(self):
        with pytest.raises(ConfigurationError):
            Study(benchmarks=["TLIM-32"], axes={"warp_factor": [9]})

    def test_zipped_seed_axis_rejected(self):
        # Silently dropping either field would corrupt results; refuse.
        with pytest.raises(ConfigurationError):
            Study(benchmarks=["TLIM-32"],
                  axes=[Axis(("seed", "segment_length"), [(101, 2)])])

    def test_duplicate_seed_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            Study(benchmarks=["TLIM-32"],
                  axes=[Axis("seed", [1]), Axis("seed", [2, 3])])

    def test_system_axis_values_type_checked(self):
        with pytest.raises(ConfigurationError):
            Study(benchmarks=["TLIM-32"],
                  axes={"comm_qubits_per_node": ["abc"]})
        with pytest.raises(ConfigurationError):
            Study(benchmarks=["TLIM-32"],
                  axes={"epr_success_probability": [True]})

    def test_executor_axis_values_type_checked(self):
        # Bad values fail at construction, not mid-execution.
        with pytest.raises(ConfigurationError):
            Study(benchmarks=["TLIM-32"],
                  axes={"adaptive_policy": ["aggressive"]})
        with pytest.raises(ConfigurationError):
            Study(benchmarks=["TLIM-32"], axes={"segment_length": [2.5]})
        with pytest.raises(ConfigurationError):
            Study(benchmarks=["TLIM-32"], axes={"seed": [1, "two"]})

    def test_zipped_adaptive_policy_axis_spec_round_trip(self):
        from repro.scheduling import AdaptivePolicy

        study = Study(benchmarks=["TLIM-32"], designs=["adapt_buf"],
                      axes=[Axis(("segment_length", "adaptive_policy"),
                                 [(2, AdaptivePolicy()),
                                  (4, AdaptivePolicy(asap_threshold=0))])],
                      num_runs=1, system=SMALL_SYSTEM)
        spec = json.loads(json.dumps(study.to_spec()))
        assert Study.from_spec(spec).run().records == study.run().records

    def test_comparison_rejects_mixed_system_variants(self):
        study = Study(benchmarks=["TLIM-32"], designs=["ideal"],
                      axes={"comm_qubits_per_node": [4, 8]},
                      num_runs=1, system=SMALL_SYSTEM)
        results = study.run()
        # Averaging across hardware variants would be meaningless.
        with pytest.raises(ConfigurationError):
            results.to_comparisons()
        by_count = results.to_comparisons(by="comm_qubits_per_node")
        assert sorted(by_count) == [4, 8]

    def test_benchmarks_required(self):
        with pytest.raises(ConfigurationError):
            Study(designs=["ideal"])

    def test_benchmark_axis_alternative(self):
        study = Study(axes=[Axis("benchmark", ["TLIM-32", "QFT-32"])],
                      designs=["ideal"], system=SMALL_SYSTEM)
        assert study.grid.size == 2

    def test_designs_default_resolved_at_run_time(self):
        from repro.runtime.designs import DESIGNS, DESIGN_ORDER

        study = Study(benchmarks=["TLIM-32"], system=SMALL_SYSTEM)
        spec = get_design("ideal").with_overrides(name="late_ideal")
        DESIGNS["late_ideal"] = spec
        DESIGN_ORDER.append("late_ideal")
        try:
            assert "late_ideal" in [
                cell.design_name for cell in study.plan()
            ]
        finally:
            del DESIGNS["late_ideal"]
            DESIGN_ORDER.remove("late_ideal")


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
class TestStudyRun:
    @pytest.fixture(scope="class")
    def grid_results(self):
        study = Study(benchmarks=["TLIM-32"],
                      designs=["async_buf", "adapt_buf", "ideal"],
                      num_runs=2, base_seed=3, system=SMALL_SYSTEM)
        return study.run()

    def test_record_per_run(self, grid_results):
        assert len(grid_results) == 3 * 2
        assert grid_results.designs() == ["async_buf", "adapt_buf", "ideal"]
        seeds = {r.seed for r in grid_results}
        assert seeds == {3, 4}

    def test_records_flat_and_queryable(self, grid_results):
        adapt = grid_results.filter(design="adapt_buf")
        assert len(adapt) == 2
        assert all(r.depth > 0 for r in adapt)
        stats = grid_results.aggregate("depth", by=["design"])
        assert stats["ideal"].mean <= stats["async_buf"].mean

    def test_metadata_describes_study(self, grid_results):
        meta = grid_results.metadata
        assert meta["benchmarks"] == ["TLIM-32"]
        assert meta["num_runs"] == 2
        assert meta["system"]["comm_qubits_per_node"] == 4

    def test_matches_direct_engine_execution(self):
        """Study results equal the engine path run by run (same seeds)."""
        config = ExperimentConfig(benchmarks=("TLIM-32",),
                                  designs=("async_buf",), num_runs=2,
                                  base_seed=3, system=SMALL_SYSTEM)
        engine_results = ExperimentEngine(config).run_cell(
            "TLIM-32", "async_buf")
        study = Study(benchmarks=["TLIM-32"], designs=["async_buf"],
                      num_runs=2, base_seed=3, system=SMALL_SYSTEM)
        records = study.run().records
        assert [r.seed for r in records] == [r.seed for r in engine_results]
        assert [r.depth for r in records] == [
            r.makespan for r in engine_results
        ]
        assert [r.fidelity for r in records] == [
            r.fidelity for r in engine_results
        ]

    def test_two_axis_grid_shares_partition_cache(self):
        cache = ArtifactCache()
        study = Study(benchmarks=["TLIM-32"], designs=["adapt_buf", "ideal"],
                      axes={"epr_success_probability": [0.2, 0.4, 0.8]},
                      num_runs=1, system=SMALL_SYSTEM, cache=cache)
        results = study.run()
        assert len(results) == 6
        # One partitioned program serves every psucc variant.
        assert cache.count("program") == 1
        comparisons = results.to_comparisons(by="epr_success_probability")
        assert sorted(comparisons) == [0.2, 0.4, 0.8]
        depths = [comparisons[p].depth_table()["adapt_buf"]
                  for p in (0.2, 0.4, 0.8)]
        assert depths[2] <= depths[0]  # better links, shorter circuits

    def test_executor_knob_axes(self):
        study = Study(benchmarks=["TLIM-32"], designs=["adapt_buf"],
                      axes={"segment_length": [2, 8]}, num_runs=1,
                      system=SMALL_SYSTEM)
        results = study.run()
        assert len(results) == 2
        assert results.values("segment_length") == [2, 8]

    def test_adaptive_policy_axis_records_stay_groupable(self):
        from repro.scheduling import AdaptivePolicy

        policies = [AdaptivePolicy(), AdaptivePolicy(asap_threshold=0)]
        study = Study(benchmarks=["TLIM-32"], designs=["adapt_buf"],
                      axes={"adaptive_policy": policies}, num_runs=1,
                      system=SMALL_SYSTEM)
        results = study.run()
        # Non-primitive coordinates become stable repr tokens, so the set
        # can be grouped/aggregated and still round-trips through JSON.
        depth = results.aggregate("depth", by=["adaptive_policy"])
        assert sorted(depth) == sorted(repr(p) for p in policies)
        assert ResultSet.from_json(results.to_json()) == results

    def test_design_spec_values(self):
        base = get_design("async_buf")
        variants = [base.with_overrides(async_groups=g,
                                        name=f"async_buf[g={g}]")
                    for g in (1, 4)]
        study = Study(benchmarks=["TLIM-32"], designs=variants,
                      num_runs=1, system=SMALL_SYSTEM)
        results = study.run()
        assert results.designs() == ["async_buf[g=1]", "async_buf[g=4]"]

    def test_distinct_design_variants_need_distinct_names(self):
        base = get_design("async_buf")
        clashing = [base.with_overrides(async_groups=2),
                    base.with_overrides(async_groups=5)]
        study = Study(benchmarks=["TLIM-32"], designs=clashing,
                      num_runs=1, system=SMALL_SYSTEM)
        # Both variants would record as 'async_buf' and silently pool.
        with pytest.raises(ConfigurationError):
            study.plan()

    def test_aggregate_accepts_bare_string_key(self):
        study = Study(benchmarks=["TLIM-32"], designs=["ideal", "original"],
                      num_runs=1, system=SMALL_SYSTEM)
        results = study.run()
        assert sorted(results.aggregate("depth", by="design")) == [
            "ideal", "original",
        ]

    def test_adaptive_policy_axis_survives_spec_round_trip(self):
        from repro.scheduling import AdaptivePolicy

        study = Study(benchmarks=["TLIM-32"], designs=["adapt_buf"],
                      axes={"adaptive_policy": [
                          AdaptivePolicy(asap_threshold=0)]},
                      num_runs=1, system=SMALL_SYSTEM)
        spec = json.loads(json.dumps(study.to_spec()))
        rebuilt = Study.from_spec(spec)
        assert rebuilt.run().records == study.run().records

    def test_design_override_survives_spec_round_trip(self):
        override = get_design("async_buf").with_overrides(
            async_groups=1, name="async_buf[g=1]")
        study = Study(benchmarks=["TLIM-32"], designs=[override],
                      num_runs=1, system=SMALL_SYSTEM)
        spec = json.loads(json.dumps(study.to_spec()))
        rebuilt = Study.from_spec(spec)
        # The serialised spec re-runs the override, not the base design.
        assert rebuilt._design_values() == [override]
        assert rebuilt.run().records == study.run().records

    def test_runner_close_spares_caller_backend(self):
        from repro.core import ExperimentRunner
        from repro.engine import SerialBackend

        class RecordingBackend(SerialBackend):
            closed = False

            def close(self):
                self.closed = True

        provided = RecordingBackend()
        config = ExperimentConfig(benchmarks=("TLIM-32",), designs=("ideal",),
                                  num_runs=1, system=SMALL_SYSTEM)
        with ExperimentRunner(config, backend=provided) as runner:
            runner.run()
        assert not provided.closed  # caller-provided instance stays open
        with ExperimentRunner(config, backend="serial") as runner:
            runner.run()  # name-resolved backends are owned and closed

    def test_spec_round_trip_runs(self):
        study = Study(benchmarks=["TLIM-32"], designs=["ideal"],
                      axes={"comm_qubits_per_node": [4, 8]},
                      num_runs=1, system=SMALL_SYSTEM, name="round-trip")
        spec = json.loads(json.dumps(study.to_spec()))
        rebuilt = Study.from_spec(spec)
        assert rebuilt.name == "round-trip"
        assert rebuilt.grid.size == study.grid.size
        assert rebuilt.system == study.system
        assert rebuilt.run().records == study.run().records


# ----------------------------------------------------------------------
# result set serialisation (satellite)
# ----------------------------------------------------------------------
class TestResultSetSerialization:
    @pytest.fixture(scope="class")
    def sweep_results(self):
        study = Study(
            benchmarks=["TLIM-32"], designs=["async_buf", "ideal"],
            axes=[Axis(("comm_qubits_per_node", "buffer_qubits_per_node"),
                       [(4, 4), (8, 8)])],
            num_runs=2, system=SMALL_SYSTEM,
        )
        return study.run()

    def test_json_round_trip_equality(self, sweep_results):
        text = sweep_results.to_json()
        reloaded = ResultSet.from_json(text)
        assert reloaded == sweep_results
        assert reloaded.records == sweep_results.records
        assert reloaded.metadata == sweep_results.metadata

    def test_json_file_round_trip(self, sweep_results, tmp_path):
        path = tmp_path / "results.json"
        sweep_results.to_json(path)
        assert ResultSet.load(path) == sweep_results

    def test_csv_column_stability(self, sweep_results):
        lines = sweep_results.to_csv().strip().splitlines()
        assert lines[0] == (
            "benchmark,design,seed,buffer_qubits_per_node,"
            "comm_qubits_per_node,depth,fidelity,num_remote,"
            "mean_remote_wait,mean_link_fidelity,epr_generated,epr_wasted"
        )
        assert len(lines) == 1 + len(sweep_results)

    def test_flat_records_merge_params(self, sweep_results):
        rows = sweep_results.to_records()
        assert rows[0]["comm_qubits_per_node"] == 4
        assert set(rows[0]) >= {"benchmark", "design", "seed", "depth"}

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            ResultSet.from_json("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            ResultSet.from_json(json.dumps({"schema": 99, "records": []}))

    def test_group_by_and_filter(self, sweep_results):
        by_count = sweep_results.group_by("comm_qubits_per_node")
        assert sorted(by_count) == [4, 8]
        assert all(len(subset) == 4 for subset in by_count.values())
        ideal8 = sweep_results.filter(design="ideal",
                                      comm_qubits_per_node=8)
        assert len(ideal8) == 2

    def test_unknown_column_rejected(self, sweep_results):
        with pytest.raises(KeyError):
            sweep_results.records[0].get("nonsense")


# ----------------------------------------------------------------------
# shim equivalence (satellite): legacy wrappers == pre-redesign outputs
# ----------------------------------------------------------------------
class TestShimEquivalence:
    def _legacy_design_comparison(self, benchmarks, designs, num_runs,
                                  system, base_seed):
        """The pre-Study implementation: ExperimentEngine.run() directly."""
        config = ExperimentConfig(
            benchmarks=tuple(benchmarks), designs=tuple(designs),
            num_runs=num_runs, base_seed=base_seed, system=system,
        )
        return ExperimentEngine(config).run()

    def _legacy_comm_sweep(self, benchmark, counts, designs, num_runs,
                           base_system, base_seed):
        """The pre-Study sweep: one engine per count, one shared cache."""
        cache = ArtifactCache()
        sweep = {}
        for count in counts:
            system = base_system.with_comm_and_buffer(count, count)
            comparisons = self._legacy_design_comparison(
                [benchmark], designs, num_runs, system, base_seed)
            sweep[count] = comparisons[benchmark]
        return sweep

    def test_design_comparison_bit_identical(self):
        kwargs = dict(benchmarks=["TLIM-32"],
                      designs=["async_buf", "adapt_buf", "ideal"],
                      num_runs=2, system=SMALL_SYSTEM, base_seed=3)
        legacy = self._legacy_design_comparison(**kwargs)
        shimmed = run_design_comparison(
            kwargs["benchmarks"], designs=kwargs["designs"],
            num_runs=kwargs["num_runs"], system=kwargs["system"],
            base_seed=kwargs["base_seed"],
        )
        assert shimmed == legacy  # dataclass equality, exact floats

    def test_comm_sweep_bit_identical(self):
        legacy = self._legacy_comm_sweep(
            "TLIM-32", [4, 8], ["adapt_buf", "ideal"], 2, SMALL_SYSTEM, 11)
        shimmed = run_comm_qubit_sweep(
            "TLIM-32", [4, 8], designs=["adapt_buf", "ideal"], num_runs=2,
            base_system=SMALL_SYSTEM, base_seed=11,
        )
        assert sorted(shimmed) == sorted(legacy)
        assert shimmed == legacy

    def test_to_comparisons_matches_design_summary_formulas(self):
        """Comparison aggregates rebuilt from records are exact."""
        study = Study(benchmarks=["TLIM-32"], designs=["async_buf"],
                      num_runs=3, base_seed=1, system=SMALL_SYSTEM)
        raw = study.run_cell("TLIM-32", "async_buf", seeds=[1, 2, 3])
        expected = DesignSummary.from_results(raw)
        rebuilt = study.run().to_comparisons()["TLIM-32"].design("async_buf")
        assert rebuilt == expected

    def test_comparison_rejects_mixed_benchmarks_per_group(self):
        study = Study(benchmarks=["TLIM-32", "QFT-32"], designs=["ideal"],
                      num_runs=1, system=SMALL_SYSTEM)
        results = study.run()
        with pytest.raises(ConfigurationError):
            results.group_by("design")["ideal"]._comparison(
                results.records)


# ----------------------------------------------------------------------
# config satellites
# ----------------------------------------------------------------------
class TestConfigSatellites:
    def test_experiment_config_designs_resolved_per_instance(self):
        from repro.runtime.designs import DESIGNS, DESIGN_ORDER

        spec = get_design("ideal").with_overrides(name="late_design")
        DESIGNS["late_design"] = spec
        DESIGN_ORDER.append("late_design")
        try:
            config = ExperimentConfig(benchmarks=("TLIM-32",))
            assert "late_design" in config.designs
        finally:
            del DESIGNS["late_design"]
            DESIGN_ORDER.remove("late_design")
        # Designs registered later never leak into earlier instances.
        assert "late_design" not in ExperimentConfig(
            benchmarks=("TLIM-32",)).designs

    def test_empty_designs_tuple_still_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(benchmarks=("TLIM-32",), designs=())

    def test_single_node_system_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_nodes=1)

    def test_multi_node_system_accepted(self):
        system = SystemConfig(num_nodes=3)
        assert system.build_architecture().num_nodes == 3


# ----------------------------------------------------------------------
# partitioner / topology axes (registry redesign)
# ----------------------------------------------------------------------
class TestPartitionerTopologyAxes:
    def test_partition_method_axis_runs_and_labels_records(self):
        study = Study(benchmarks="QFT-16", designs=["adapt_buf"],
                      axes={"partition_method": ["multilevel", "spectral"]},
                      num_runs=1, system=SMALL_SYSTEM)
        results = study.run()
        study.close()
        assert len(results) == 2
        assert sorted(results.group_by("partition_method")) == [
            "multilevel", "spectral"]

    def test_topology_axis_produces_system_variants(self):
        study = Study(benchmarks="TLIM-32", designs=["ideal"],
                      axes={"topology": ["all_to_all", "ring"]},
                      num_runs=1, system=SMALL_SYSTEM)
        plan = study.plan()
        assert sorted(s.topology for s in plan.systems()) == [
            "all_to_all", "ring"]

    def test_partition_method_argument_applied_to_system(self):
        study = Study(benchmarks="TLIM-32", designs=["ideal"], num_runs=1,
                      partition_method="contiguous", system=SMALL_SYSTEM)
        assert study.system.partition_method == "contiguous"
        assert study.partition_method == "contiguous"

    def test_shared_cache_partitions_once_across_topologies(self):
        cache = ArtifactCache()
        study = Study(benchmarks="TLIM-32", designs=["ideal"],
                      axes={"topology": ["all_to_all", "line"]},
                      num_runs=1, system=SystemConfig(
                          partition_method="contiguous"),
                      cache=cache)
        study.run()
        study.close()
        # One partitioned program serves both topology variants.
        assert cache.count("program") == 1

    def test_spec_round_trip_with_registry_axes(self):
        study = Study(benchmarks="QFT-16", designs=["adapt_buf"],
                      axes={"partition_method": ["multilevel", "spectral"]},
                      num_runs=1, system=SMALL_SYSTEM)
        spec = json.loads(json.dumps(study.to_spec()))
        assert spec["system"]["partition_method"] == "multilevel"
        assert spec["system"]["topology"] == "all_to_all"
        rebuilt = Study.from_spec(spec)
        first, second = study.run(), rebuilt.run()
        study.close()
        rebuilt.close()
        assert first.records == second.records

    def test_unknown_axis_value_fails_at_construction(self):
        with pytest.raises(ConfigurationError,
                           match="invalid 'partition_method'"):
            Study(benchmarks="TLIM-32", num_runs=1,
                  axes={"partition_method": ["multilevel", "metis"]})
        with pytest.raises(ConfigurationError, match="invalid 'topology'"):
            Study(benchmarks="TLIM-32", num_runs=1,
                  axes={"topology": ["torus"]})

    def test_non_string_registry_value_rejected(self):
        with pytest.raises(ConfigurationError, match="registry names"):
            Study(benchmarks="TLIM-32", num_runs=1,
                  axes={"topology": [3]})


class TestAxisErrorMessages:
    def test_unknown_field_lists_sweepable_axes(self):
        with pytest.raises(ConfigurationError) as excinfo:
            Study(benchmarks="TLIM-32", num_runs=1,
                  axes={"warp_factor": [1, 2]})
        message = str(excinfo.value)
        assert "unknown axis field 'warp_factor'" in message
        assert "comm_qubits_per_node" in message  # numeric fields listed
        assert "partition_method" in message      # string fields listed
        assert "segment_length" in message        # reserved axes listed

    def test_non_scalar_system_field_named_explicitly(self):
        with pytest.raises(ConfigurationError, match="not a scalar"):
            Study(benchmarks="TLIM-32", num_runs=1,
                  axes={"gate_times": [1, 2]})

    def test_non_numeric_value_for_numeric_field(self):
        with pytest.raises(ConfigurationError, match="must be numbers"):
            Study(benchmarks="TLIM-32", num_runs=1,
                  axes={"comm_qubits_per_node": ["lots"]})
