"""Unit tests for the KL / FM / spectral / multilevel partitioners."""

import pytest

from repro.benchmarks import qft_circuit, random_regular_graph, tlim_circuit
from repro.partitioning import (
    InteractionGraph,
    MultilevelPartitioner,
    Partition,
    fm_bisection,
    fm_refine,
    kernighan_lin_bisection,
    kl_refine,
    multilevel_bisection,
    partition_graph,
    spectral_bisection,
)
from repro.partitioning.spectral import fiedler_vector
from repro.exceptions import PartitionError


def two_cluster_graph(cluster_size=8, bridge_weight=1.0):
    """Two dense clusters joined by a single weighted bridge edge."""
    edges = {}
    offset = cluster_size
    for i in range(cluster_size):
        for j in range(i + 1, cluster_size):
            edges[(i, j)] = 1.0
            edges[(offset + i, offset + j)] = 1.0
    edges[(0, offset)] = bridge_weight
    return InteractionGraph(2 * cluster_size, edges)


class TestKernighanLin:
    def test_finds_natural_bisection(self):
        graph = two_cluster_graph()
        partition = kernighan_lin_bisection(graph, seed=1)
        assert partition.cut_weight(graph) == pytest.approx(1.0)
        assert partition.block_sizes() == [8, 8]

    def test_refine_never_worsens_cut(self):
        graph = two_cluster_graph()
        start = Partition.contiguous(16, 2)
        refined = kl_refine(graph, start)
        assert refined.cut_weight(graph) <= start.cut_weight(graph) + 1e-9

    def test_requires_bisection(self):
        graph = two_cluster_graph()
        bad = Partition({v: v % 4 for v in range(16)}, 4)
        with pytest.raises(PartitionError):
            kl_refine(graph, bad)

    def test_too_small_graph(self):
        with pytest.raises(PartitionError):
            kernighan_lin_bisection(InteractionGraph(1))


class TestFiducciaMattheyses:
    def test_refine_finds_natural_bisection_from_contiguous_start(self):
        graph = two_cluster_graph()
        refined = fm_refine(graph, Partition.contiguous(16, 2))
        assert refined.cut_weight(graph) == pytest.approx(1.0)

    def test_bisection_produces_valid_balanced_partition(self):
        graph = two_cluster_graph()
        partition = fm_bisection(graph, seed=4)
        assert partition.num_vertices == 16
        assert partition.num_blocks == 2
        # FM from a random start may hit a local optimum on twin cliques, but
        # it must never be worse than the worst balanced cut.
        assert partition.cut_weight(graph) <= graph.total_edge_weight

    def test_balance_respected(self):
        graph = two_cluster_graph()
        partition = fm_bisection(graph, seed=4, balance_tolerance=0.1)
        sizes = partition.block_sizes()
        assert max(sizes) <= (1.1 * 16 / 2) + 1e-9

    def test_refine_never_worsens_cut(self):
        graph = InteractionGraph.from_circuit(tlim_circuit(16, num_steps=2))
        start = Partition.contiguous(16, 2)
        refined = fm_refine(graph, start)
        assert refined.cut_weight(graph) <= start.cut_weight(graph) + 1e-9

    def test_requires_bisection(self):
        with pytest.raises(PartitionError):
            fm_refine(two_cluster_graph(), Partition({v: 0 for v in range(16)}, 1))


class TestSpectral:
    def test_balanced_split(self):
        graph = two_cluster_graph()
        partition = spectral_bisection(graph)
        assert partition.block_sizes() == [8, 8]
        assert partition.cut_weight(graph) == pytest.approx(1.0)

    def test_fiedler_vector_orthogonal_to_constant(self):
        import numpy as np

        graph = two_cluster_graph()
        vector = fiedler_vector(graph)
        assert abs(np.sum(vector)) < 1e-6

    def test_small_graph_rejected(self):
        with pytest.raises(PartitionError):
            spectral_bisection(InteractionGraph(1))


class TestMultilevel:
    def test_finds_natural_bisection(self):
        graph = two_cluster_graph(cluster_size=12)
        partition = multilevel_bisection(graph, seed=0)
        assert partition.cut_weight(graph) == pytest.approx(1.0)

    def test_tlim_chain_cut_is_one(self):
        graph = InteractionGraph.from_circuit(tlim_circuit(32, num_steps=1))
        partition = multilevel_bisection(graph, seed=0)
        # The optimal bisection of a path graph cuts exactly one bond.
        assert partition.cut_weight(graph) == pytest.approx(1.0)

    def test_qft_cut_lower_bound(self):
        graph = InteractionGraph.from_circuit(qft_circuit(16))
        partition = multilevel_bisection(graph, seed=0)
        # Complete graph: any balanced bisection cuts exactly (n/2)^2 edges.
        assert partition.cut_weight(graph) == pytest.approx(64.0)

    def test_beats_or_matches_random_regular_baseline(self):
        edges = random_regular_graph(32, 4, seed=2)
        graph = InteractionGraph.from_edges(32, edges)
        multilevel = multilevel_bisection(graph, seed=0)
        contiguous = Partition.contiguous(32, 2)
        assert multilevel.cut_weight(graph) <= contiguous.cut_weight(graph)

    def test_k_way_power_of_two(self):
        graph = InteractionGraph.from_circuit(tlim_circuit(16, num_steps=1))
        partition = MultilevelPartitioner(seed=0).k_way(graph, 4)
        assert partition.num_blocks == 4
        assert sorted(partition.block_sizes()) == [4, 4, 4, 4]

    def test_k_way_odd_block_count(self):
        graph = InteractionGraph.from_circuit(tlim_circuit(18, num_steps=1))
        partition = MultilevelPartitioner(seed=0).k_way(graph, 3)
        assert partition.num_blocks == 3
        assert sorted(partition.block_sizes()) == [6, 6, 6]

    def test_k_way_rejects_zero_blocks(self):
        graph = two_cluster_graph()
        with pytest.raises(PartitionError):
            MultilevelPartitioner().k_way(graph, 0)

    def test_partition_graph_dispatch(self):
        graph = two_cluster_graph()
        for method in ("multilevel", "kl", "fm", "spectral", "contiguous"):
            partition = partition_graph(graph, 2, seed=0, method=method)
            assert partition.num_blocks == 2
        with pytest.raises(PartitionError):
            partition_graph(graph, 2, method="bogus")
        with pytest.raises(PartitionError):
            partition_graph(graph, 4, method="kl")

    def test_invalid_configuration(self):
        with pytest.raises(PartitionError):
            MultilevelPartitioner(initial_method="wrong")
        with pytest.raises(PartitionError):
            MultilevelPartitioner(refine_method="wrong")


class TestPartitionObject:
    def test_from_blocks_and_accessors(self):
        partition = Partition.from_blocks([[0, 2], [1, 3]])
        assert partition.block_of(2) == 0
        assert partition.block_members(1) == [1, 3]
        assert partition.block_sizes() == [2, 2]
        assert partition.is_crossing(0, 1)
        assert not partition.is_crossing(0, 2)

    def test_duplicate_vertex_rejected(self):
        with pytest.raises(PartitionError):
            Partition.from_blocks([[0, 1], [1, 2]])

    def test_contiguous_requires_divisibility(self):
        with pytest.raises(PartitionError):
            Partition.contiguous(10, 3)

    def test_imbalance(self):
        partition = Partition.from_blocks([[0, 1, 2], [3]])
        assert partition.imbalance() == pytest.approx(0.5)

    def test_capacity_check(self):
        partition = Partition.from_blocks([[0, 1, 2], [3]])
        assert partition.satisfies_capacity([3, 2])
        assert not partition.satisfies_capacity([2, 2])
        with pytest.raises(PartitionError):
            partition.satisfies_capacity([3])

    def test_invalid_block_index(self):
        with pytest.raises(PartitionError):
            Partition({0: 5}, 2)

    def test_unassigned_vertex_raises(self):
        partition = Partition({0: 0}, 1)
        with pytest.raises(PartitionError):
            partition.block_of(3)
