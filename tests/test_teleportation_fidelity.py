"""Unit tests for the gate-teleportation fidelity evaluation and FidelityModel."""

import math

import pytest

from repro.hardware.parameters import GateFidelities
from repro.noise import (
    FidelityModel,
    remote_gate_fidelity,
    teleported_cnot_average_fidelity,
    teleported_cnot_process_fidelity,
)
from repro.exceptions import NoiseError


class TestTeleportedCnot:
    def test_perfect_components_give_unit_fidelity(self):
        fidelity = teleported_cnot_process_fidelity(1.0, 1.0, 1.0, 1.0)
        assert fidelity == pytest.approx(1.0, abs=1e-9)

    def test_table2_defaults_are_high_but_below_one(self):
        fidelity = teleported_cnot_average_fidelity(0.99)
        assert 0.97 < fidelity < 1.0

    def test_monotone_in_link_fidelity(self):
        values = [teleported_cnot_average_fidelity(f) for f in (0.8, 0.9, 0.95, 0.99)]
        assert values == sorted(values)

    def test_monotone_in_cnot_fidelity(self):
        low = teleported_cnot_average_fidelity(0.99, cnot_fidelity=0.98)
        high = teleported_cnot_average_fidelity(0.99, cnot_fidelity=0.999)
        assert high > low

    def test_monotone_in_measurement_fidelity(self):
        low = teleported_cnot_average_fidelity(0.99, measurement_fidelity=0.95)
        high = teleported_cnot_average_fidelity(0.99, measurement_fidelity=0.998)
        assert high > low

    def test_maximally_mixed_link_is_useless(self):
        fidelity = teleported_cnot_process_fidelity(0.25, 1.0, 1.0, 1.0)
        # A maximally mixed resource fully dephases both halves of the
        # teleportation: the surviving process fidelity collapses to the
        # classical value 1/4, far below the fresh-link value.
        assert fidelity == pytest.approx(0.25, abs=0.02)
        assert fidelity < 0.5 * teleported_cnot_process_fidelity(0.99, 1.0, 1.0, 1.0)

    def test_out_of_range_link_fidelity(self):
        with pytest.raises(NoiseError):
            teleported_cnot_process_fidelity(0.1)

    def test_cached_lookup_consistent(self):
        direct = teleported_cnot_average_fidelity(0.987)
        cached = remote_gate_fidelity(0.987, resolution=1e-4)
        assert cached == pytest.approx(direct, abs=1e-3)

    def test_resolution_clamps_extremes(self):
        assert remote_gate_fidelity(1.0000001) <= 1.0
        assert remote_gate_fidelity(0.2500001) > 0.0

    def test_affine_fast_path_matches_density_matrix_sim(self):
        # The teleportation channel is linear in the input state and the
        # Werner resource is affine in its Bell fidelity, so the O(1)
        # affine evaluation must match the full 6-qubit simulation to
        # machine precision across the whole Werner range.
        for link in (0.25, 0.3, 0.5, 0.77, 0.9, 0.987, 1.0):
            direct = teleported_cnot_average_fidelity(link)
            fast = remote_gate_fidelity(link)
            assert fast == pytest.approx(direct, abs=5e-15)
        # Non-default local noise gets its own cached anchor pair.
        direct = teleported_cnot_average_fidelity(0.8, 0.99, 0.97, 0.999)
        fast = remote_gate_fidelity(0.8, 0.99, 0.97, 0.999)
        assert fast == pytest.approx(direct, abs=5e-15)


class TestFidelityModel:
    def test_ideal_circuit_factors(self):
        model = FidelityModel(kappa=0.0)
        breakdown = model.estimate(
            num_single_qubit=10, num_local_two_qubit=5,
            remote_link_fidelities=[], makespan=100.0,
        )
        assert breakdown.single_qubit_factor == pytest.approx(0.9999 ** 10)
        assert breakdown.local_two_qubit_factor == pytest.approx(0.999 ** 5)
        assert breakdown.idling_factor == pytest.approx(1.0)
        assert breakdown.total == pytest.approx(0.9999 ** 10 * 0.999 ** 5)

    def test_idling_decay_makespan_mode(self):
        model = FidelityModel(kappa=0.002, idle_mode="makespan")
        assert model.idling_factor(500.0) == pytest.approx(math.exp(-1.0))

    def test_idling_decay_qubit_mode(self):
        model = FidelityModel(kappa=0.002, idle_mode="qubit-idle")
        assert model.idling_factor(500.0, qubit_idle_total=100.0) == pytest.approx(
            math.exp(-0.2)
        )

    def test_remote_gates_lower_fidelity(self):
        model = FidelityModel(kappa=0.0)
        without = model.estimate_total(0, 0, [], 0.0)
        with_remote = model.estimate_total(0, 0, [0.95, 0.9], 0.0)
        assert with_remote < without == pytest.approx(1.0)

    def test_fresher_links_give_higher_fidelity(self):
        model = FidelityModel(kappa=0.0)
        fresh = model.estimate_total(0, 0, [0.99] * 5, 0.0)
        stale = model.estimate_total(0, 0, [0.90] * 5, 0.0)
        assert fresh > stale

    def test_measurements_included(self):
        model = FidelityModel(kappa=0.0)
        with_measure = model.estimate_total(0, 0, [], 0.0, num_measurements=3)
        assert with_measure == pytest.approx(0.998 ** 3)

    def test_custom_gate_fidelities(self):
        model = FidelityModel(fidelities=GateFidelities(local_cnot=0.99), kappa=0.0)
        breakdown = model.estimate(0, 10, [], 0.0)
        assert breakdown.local_two_qubit_factor == pytest.approx(0.99 ** 10)

    def test_validation(self):
        with pytest.raises(NoiseError):
            FidelityModel(idle_mode="weird")
        with pytest.raises(NoiseError):
            FidelityModel(kappa=-1.0)
        model = FidelityModel()
        with pytest.raises(NoiseError):
            model.estimate(-1, 0, [], 0.0)
        with pytest.raises(NoiseError):
            model.idling_factor(-5.0)
