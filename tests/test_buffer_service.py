"""Unit tests for the buffer pool and the entanglement supply service."""

import pytest

from repro.entanglement import (
    AttemptPolicy,
    AttemptSchedule,
    BufferPool,
    EntanglementGenerator,
    EntanglementLink,
    EntanglementService,
)
from repro.exceptions import BufferError, EntanglementError


def make_link(created=0.0, pair=(0, 1)):
    return EntanglementLink(node_pair=pair, created_time=created)


def make_service(policy=AttemptPolicy.ASYNCHRONOUS, capacity=10, psucc=0.4,
                 seed=0, prefill=0, pairs=10, **kwargs):
    schedule = AttemptSchedule(num_pairs=pairs, policy=policy)
    generator = EntanglementGenerator(schedule, psucc, seed=seed)
    return EntanglementService(generator, buffer_capacity=capacity, kappa=0.002,
                               prefill=prefill, **kwargs)


class TestBufferPool:
    def test_store_and_consume(self):
        pool = BufferPool(capacity=2)
        link = make_link(0.0)
        assert pool.store(link, 1.0)
        assert len(pool) == 1
        assert pool.count_available(0.5) == 0
        assert pool.count_available(1.0) == 1
        consumed = pool.pop_available(2.0)
        assert consumed is link
        assert pool.statistics.consumed_total == 1

    def test_zero_capacity_rejects(self):
        pool = BufferPool(capacity=0)
        assert not pool.store(make_link(), 1.0)
        assert pool.statistics.rejected_total == 1

    def test_replace_oldest_when_full(self):
        pool = BufferPool(capacity=1, replace_oldest_when_full=True)
        old = make_link(0.0)
        new = make_link(5.0)
        pool.store(old, 1.0)
        assert pool.store(new, 6.0)
        assert pool.stored_links == [new]
        assert pool.statistics.expired_total == 1

    def test_reject_when_full_without_replacement(self):
        pool = BufferPool(capacity=1, replace_oldest_when_full=False)
        pool.store(make_link(0.0), 1.0)
        assert not pool.store(make_link(2.0), 3.0)
        assert pool.statistics.rejected_total == 1

    def test_lifo_returns_freshest(self):
        pool = BufferPool(capacity=3, consumption_order="lifo")
        links = [make_link(t) for t in (0.0, 5.0, 10.0)]
        for link in links:
            pool.store(link, link.created_time + 1.0)
        assert pool.pop_available(20.0) is links[2]

    def test_fifo_returns_oldest(self):
        pool = BufferPool(capacity=3, consumption_order="fifo")
        links = [make_link(t) for t in (0.0, 5.0, 10.0)]
        for link in links:
            pool.store(link, link.created_time + 1.0)
        assert pool.pop_available(20.0) is links[0]

    def test_pop_without_available_raises(self):
        pool = BufferPool(capacity=2)
        with pytest.raises(BufferError):
            pool.pop_available(1.0)
        pool.store(make_link(5.0), 6.0)
        with pytest.raises(BufferError):
            pool.pop_available(2.0)

    def test_cutoff_expiry(self):
        pool = BufferPool(capacity=4, cutoff=10.0)
        pool.store(make_link(0.0), 1.0)
        pool.store(make_link(8.0), 9.0)
        expired = pool.expire_until(15.0)
        assert expired == 1
        assert len(pool) == 1

    def test_flush(self):
        pool = BufferPool(capacity=4)
        pool.store(make_link(0.0), 1.0)
        pool.store(make_link(1.0), 2.0)
        assert pool.flush(10.0) == 2
        assert len(pool) == 0

    def test_mean_consumed_age(self):
        pool = BufferPool(capacity=2)
        pool.store(make_link(0.0), 1.0)
        pool.pop_available(5.0)
        assert pool.statistics.mean_consumed_age == pytest.approx(5.0)

    def test_invalid_configuration(self):
        with pytest.raises(BufferError):
            BufferPool(capacity=-1)
        with pytest.raises(BufferError):
            BufferPool(capacity=1, cutoff=0.0)
        with pytest.raises(BufferError):
            BufferPool(capacity=1, consumption_order="weird")


class TestEntanglementService:
    def test_buffered_acquire_is_immediate_when_stocked(self):
        service = make_service(psucc=1.0)
        ready, link = service.acquire(50.0)
        assert ready == pytest.approx(50.0)
        assert link.created_time <= 50.0

    def test_acquire_waits_when_nothing_generated_yet(self):
        service = make_service(policy=AttemptPolicy.SYNCHRONOUS, psucc=1.0)
        ready, _ = service.acquire(0.0)
        assert ready >= 10.0

    def test_acquires_are_distinct_links(self):
        service = make_service(psucc=1.0)
        ids = set()
        for _ in range(20):
            _, link = service.acquire(100.0)
            ids.add(link.link_id)
        assert len(ids) == 20

    def test_unbuffered_waits_for_fresh_success(self):
        service = make_service(capacity=0, psucc=1.0,
                               policy=AttemptPolicy.SYNCHRONOUS)
        ready, _ = service.acquire(12.0)
        assert ready == pytest.approx(20.0)
        assert service.statistics.consumed_direct == 1

    def test_prefill_serves_at_time_zero(self):
        service = make_service(prefill=5, psucc=0.4)
        ready, link = service.acquire(0.0)
        assert ready == pytest.approx(0.0)
        assert link.created_time == 0.0

    def test_prefill_bounded_by_capacity(self):
        with pytest.raises(EntanglementError):
            make_service(capacity=2, prefill=3)

    def test_count_available_monotone_while_unconsumed(self):
        service = make_service(psucc=1.0)
        early = service.count_available(5.0)
        late = service.count_available(50.0)
        assert late >= early

    def test_consumed_links_not_counted(self):
        service = make_service(psucc=1.0)
        before = service.count_available(40.0)
        service.acquire(40.0)
        after = service.count_available(40.0)
        assert after == before - 1

    def test_waste_accounting(self):
        service = make_service(psucc=1.0, capacity=3)
        service.advance_to(500.0)
        service.finalize(500.0)
        stats = service.statistics
        assert stats.generated_total > 3
        assert service.total_wasted > 0
        assert stats.consumed_total == 0

    def test_finalize_flushes_buffer(self):
        service = make_service(psucc=1.0)
        service.advance_to(100.0)
        service.finalize(100.0)
        assert service.count_available(100.0) == 0

    def test_mean_consumed_fidelity_reasonable(self):
        service = make_service(psucc=0.8, seed=2)
        for t in range(20, 120, 10):
            service.acquire(float(t))
        fidelity = service.mean_consumed_fidelity()
        assert 0.9 < fidelity <= 0.99

    def test_async_waits_shorter_than_sync_when_empty(self):
        sync = make_service(policy=AttemptPolicy.SYNCHRONOUS, psucc=1.0, seed=1)
        async_service = make_service(policy=AttemptPolicy.ASYNCHRONOUS, psucc=1.0,
                                     seed=1)
        sync_ready, _ = sync.acquire(0.5)
        async_ready, _ = async_service.acquire(0.5)
        assert async_ready <= sync_ready

    def test_invalid_acquire_time(self):
        service = make_service()
        with pytest.raises(EntanglementError):
            service.acquire(-1.0)

    def test_negative_kappa_rejected(self):
        schedule = AttemptSchedule(num_pairs=1)
        generator = EntanglementGenerator(schedule, 0.5)
        with pytest.raises(EntanglementError):
            EntanglementService(generator, buffer_capacity=1, kappa=-0.1)
