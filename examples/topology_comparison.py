"""Interconnect topology comparison: ``ring`` vs ``all_to_all`` at 3-4 nodes.

Demonstrates the topology registry end to end:

1. **3 nodes, QAOA** — a ring over three nodes *is* the complete
   interconnect, so ``ring`` and ``all_to_all`` produce identical makespan
   and fidelity; the study shows the two topology axis points agreeing.
2. **4 nodes, QAOA** — the multilevel partition of a random-regular QAOA
   circuit needs entanglement between diagonal node pairs a 4-node ring does
   not link, and the compile stage rejects the combination with a clear
   :class:`~repro.exceptions.TopologyError` (shown, not hidden).
3. **4 nodes, TLIM** — a 1D Trotter circuit partitioned contiguously only
   couples neighbouring blocks, so the ring *is* feasible — and it beats
   ``all_to_all``: with 2 instead of 3 peers per node, each link gets more
   dedicated communication qubits.

Set ``REPRO_RUNS`` to change the averaging (default 5).

Run with:  python examples/topology_comparison.py
"""

from __future__ import annotations

import os

from repro import Study, SystemConfig
from repro.exceptions import TopologyError

NUM_RUNS = int(os.environ.get("REPRO_RUNS", 5))
DESIGNS = ["original", "adapt_buf"]


def _print_table(results, title: str) -> None:
    print(title)
    depth = results.aggregate("depth", by=["topology", "design"])
    fidelity = results.aggregate("fidelity", by=["topology", "design"])
    for (topology, design), stats in depth.items():
        print(f"  {topology:<11} {design:<10} depth {stats.mean:8.2f}"
              f"   fidelity {fidelity[(topology, design)].mean:.4f}")
    print()


def main() -> None:
    # --- 1. three nodes: the ring is the complete interconnect ----------
    study = Study(
        benchmarks="QAOA-r4-24", designs=DESIGNS,
        axes={"topology": ["all_to_all", "ring"]},
        num_runs=NUM_RUNS,
        system=SystemConfig(num_nodes=3, data_qubits_per_node=8,
                            comm_qubits_per_node=6, buffer_qubits_per_node=6),
        name="topology-3node-qaoa",
    )
    results = study.run()
    study.close()
    _print_table(results, "QAOA-r4-24 on 3 nodes (ring == all_to_all):")

    # --- 2. four nodes: the ring cannot serve QAOA's partition ----------
    study = Study(
        benchmarks="QAOA-r4-32", designs=DESIGNS, num_runs=1,
        system=SystemConfig(num_nodes=4, data_qubits_per_node=8,
                            comm_qubits_per_node=6, buffer_qubits_per_node=6,
                            topology="ring"),
    )
    try:
        study.run()
        raise AssertionError("expected the ring-4 QAOA study to be rejected")
    except TopologyError as error:
        print("QAOA-r4-32 on a 4-node ring is rejected at compile time:")
        print(f"  {error}")
        print()
    finally:
        study.close()

    # --- 3. four nodes, chain circuit: ring feasible and *faster* -------
    study = Study(
        benchmarks="TLIM-32", designs=DESIGNS,
        axes={"topology": ["all_to_all", "ring"]},
        num_runs=NUM_RUNS,
        system=SystemConfig(num_nodes=4, data_qubits_per_node=8,
                            comm_qubits_per_node=6, buffer_qubits_per_node=6,
                            partition_method="contiguous"),
        name="topology-4node-tlim",
    )
    results = study.run()
    study.close()
    _print_table(results,
                 "TLIM-32 on 4 nodes, contiguous partition "
                 "(ring concentrates comm qubits on fewer links):")

    ring = results.filter(topology="ring").aggregate("depth", by=["design"])
    full = results.filter(topology="all_to_all").aggregate("depth",
                                                           by=["design"])
    for design in DESIGNS:
        gain = 1.0 - ring[design].mean / full[design].mean
        print(f"ring vs all_to_all depth reduction ({design}): {gain:.1%}")


if __name__ == "__main__":
    main()
