"""Figure 7 style study: how many communication / buffer qubits are enough?

Sweeps the number of communication and buffer qubits per node (zipped into
one axis, as in the paper's Fig. 7) for the QAOA-r8-32 benchmark as a single
declarative :class:`repro.Study` — no hand-written sweep loop — and reports
the depth of every buffered design, showing the paper's finding that ~20
communication qubits per node serve every remote gate immediately
(near-ideal depth) while fidelity barely moves.

The same sweep from the command line:

    python -m repro sweep --benchmark QAOA-r8-32 \\
        --axis comm_qubits_per_node,buffer_qubits_per_node=5:5,10:10,15:15,20:20

Run with:  python examples/comm_qubit_scaling.py
"""

from __future__ import annotations

import os

from repro import PAPER_32Q_SYSTEM, Axis, Study
from repro.analysis import format_table

NUM_RUNS = int(os.environ.get("REPRO_RUNS", 3))
COUNTS = [5, 10, 15, 20]
DESIGNS = ["sync_buf", "async_buf", "adapt_buf", "init_buf", "ideal"]


def main() -> None:
    study = Study(
        benchmarks="QAOA-r8-32",
        designs=DESIGNS,
        axes=[Axis(("comm_qubits_per_node", "buffer_qubits_per_node"),
                   [(count, count) for count in COUNTS])],
        num_runs=NUM_RUNS,
        base_seed=7,
        system=PAPER_32Q_SYSTEM,
        name="fig7-comm-qubit-scaling",
    )
    results = study.run()

    depth = results.aggregate("depth",
                              by=["comm_qubits_per_node", "design"])
    rows = [
        [count] + [f"{depth[(count, design)].mean:.1f}" for design in DESIGNS]
        for count in COUNTS
    ]
    print("QAOA-r8-32 mean circuit depth vs communication/buffer qubits per node")
    print(format_table(["#comm = #buff"] + DESIGNS, rows))

    fidelity = results.aggregate("fidelity",
                                 by=["comm_qubits_per_node", "design"])
    fidelity_rows = [
        [count] + [f"{fidelity[(count, design)].mean:.3f}"
                   for design in DESIGNS]
        for count in COUNTS
    ]
    print("\nCorresponding output fidelities (nearly flat, as the paper observes)")
    print(format_table(["#comm = #buff"] + DESIGNS, fidelity_rows))


if __name__ == "__main__":
    main()
