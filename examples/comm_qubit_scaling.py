"""Figure 7 style study: how many communication / buffer qubits are enough?

Sweeps the number of communication and buffer qubits per node for the
QAOA-r8-32 benchmark and reports the depth of every buffered design, showing
the paper's finding that ~20 communication qubits per node serve every remote
gate immediately (near-ideal depth) while fidelity barely moves.

Run with:  python examples/comm_qubit_scaling.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import PAPER_32Q_SYSTEM, run_comm_qubit_sweep

COUNTS = [5, 10, 15, 20]
DESIGNS = ["sync_buf", "async_buf", "adapt_buf", "init_buf", "ideal"]


def main() -> None:
    sweep = run_comm_qubit_sweep(
        "QAOA-r8-32", COUNTS, designs=DESIGNS, num_runs=3,
        base_system=PAPER_32Q_SYSTEM, base_seed=7,
    )

    rows = []
    for count in COUNTS:
        table = sweep[count].depth_table()
        rows.append([count] + [f"{table[design]:.1f}" for design in DESIGNS])
    print("QAOA-r8-32 mean circuit depth vs communication/buffer qubits per node")
    print(format_table(["#comm = #buff"] + DESIGNS, rows))

    fidelity_rows = []
    for count in COUNTS:
        table = sweep[count].fidelity_table()
        fidelity_rows.append([count] + [f"{table[design]:.3f}" for design in DESIGNS])
    print("\nCorresponding output fidelities (nearly flat, as the paper observes)")
    print(format_table(["#comm = #buff"] + DESIGNS, fidelity_rows))


if __name__ == "__main__":
    main()
