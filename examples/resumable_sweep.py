"""Resumable sweeps: durable run stores, interruption, and recovery.

Runs one study four ways to demonstrate the store life-cycle:

1. an *interrupted* invocation that persists only its first chunks
   (``max_chunks`` stands in for a kill signal — a real ``kill -9`` leaves
   the store in exactly the same state),
2. a ``status``-style inspection of the half-finished store,
3. a *resuming* invocation that executes only the missing chunks, and
4. the uninterrupted in-memory reference the resumed result must match
   **byte for byte**.

The equivalent command-line session:

    python -m repro sweep --benchmark TLIM-32 --design ideal --design original \\
        --runs 6 --store runs/demo --store-chunk-size 2 --max-chunks 2
    python -m repro status --store runs/demo
    python -m repro sweep --benchmark TLIM-32 --design ideal --design original \\
        --runs 6 --store runs/demo --resume --out demo.json

Run with:  python examples/resumable_sweep.py
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro import ResultSet, RunStore, Study, aggregate_stream
from repro.analysis import store_status_report

NUM_RUNS = max(int(os.environ.get("REPRO_RUNS", 6)), 2)


def make_study() -> Study:
    """A fresh study per invocation, as separate processes would build it."""
    return Study(benchmarks="TLIM-32", designs=["ideal", "original"],
                 num_runs=NUM_RUNS, base_seed=1, name="resumable-demo")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="resumable-sweep-"))
    store = workdir / "store"

    # 1. Start the sweep, "crashing" after two chunks are durable.
    print("step 1 — interrupted invocation (2 chunks, then stop)")
    with make_study() as study:
        partial = study.run(store=store, store_chunk_size=2, max_chunks=2,
                            progress=lambda e: print(
                                f"  chunks {e.done_chunks}/{e.total_chunks}  "
                                f"runs {e.done_tasks}/{e.total_tasks}"))
    print(f"  partial result holds {len(partial)} of "
          f"{RunStore.load(store).summary()['total_tasks']} runs\n")

    # 2. Inspect the half-finished store (what `repro status` prints).
    print("step 2 — store status")
    print("  " + store_status_report(store).replace("\n", "\n  ") + "\n")

    # 3. Resume: only the chunks missing from the manifest execute.
    print("step 3 — resuming invocation")
    with make_study() as study:
        resumed = study.run(store=store, progress=lambda e: print(
            f"  chunks {e.done_chunks}/{e.total_chunks}"
            f"  ({e.resumed_chunks} resumed from the store)"))
    print()

    # 4. The interrupted-then-resumed sweep equals the uninterrupted one.
    print("step 4 — byte-identity check")
    with make_study() as study:
        uninterrupted = study.run()
    assert resumed.to_json() == uninterrupted.to_json()
    assert ResultSet.from_store(store).to_json() == uninterrupted.to_json()
    print("  resumed result is byte-identical to the uninterrupted run")

    # Bonus: aggregate the store without materialising its records.
    stats = aggregate_stream(RunStore.load(store).iter_records(),
                             "depth", by="design")
    for design, summary in stats.items():
        print(f"  {design:9s} depth {summary.mean:7.2f} ± {summary.std:.2f}")
    print(f"\nstore kept at {store} — delete when done, or point "
          f"`python -m repro status --store` at it.")


if __name__ == "__main__":
    main()
