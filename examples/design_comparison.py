"""Reduced Figure 5 / Figure 6 reproduction via the Study API.

Runs all six designs on the 32-qubit benchmark suite as one declarative
:class:`repro.Study`, prints the depth-relative-to-ideal and fidelity tables
corresponding to Figs. 5 and 6 of the paper, and saves the flat ResultSet to
JSON so the grid can be re-analysed without re-simulation
(``ResultSet.load("design_comparison_results.json")``).

Set ``REPRO_RUNS=50`` to match the paper's averaging.

Run with:  python examples/design_comparison.py
"""

from __future__ import annotations

import os

from repro import PAPER_32Q_SYSTEM, Study
from repro.analysis import comparison_report, relative_depth_report

NUM_RUNS = int(os.environ.get("REPRO_RUNS", 5))
BENCHMARKS = ["TLIM-32", "QAOA-r4-32", "QAOA-r8-32", "QFT-32"]
OUTPUT = "design_comparison_results.json"


def main() -> None:
    study = Study(benchmarks=BENCHMARKS, num_runs=NUM_RUNS,
                  system=PAPER_32Q_SYSTEM, base_seed=1,
                  name="fig5-fig6-design-comparison")
    results = study.run()
    comparisons = results.to_comparisons()

    print("Figure 5 — circuit depth relative to the ideal execution")
    print(relative_depth_report(comparisons.values()))
    print()
    for comparison in comparisons.values():
        print(comparison_report(comparison, metric="fidelity"))
        print()

    # Headline numbers of the paper, recomputed from the flat records.
    depth = results.aggregate("depth", by=["benchmark", "design"])
    reductions = [
        1.0 - depth[(name, "sync_buf")].mean / depth[(name, "original")].mean
        for name in BENCHMARKS
    ]
    print(f"Average depth reduction from buffering alone: "
          f"{sum(reductions) / len(reductions):.1%} (paper reports 61.7%)")

    async_gain = [
        1.0 - depth[(name, "async_buf")].mean / depth[(name, "sync_buf")].mean
        for name in BENCHMARKS
    ]
    print(f"Additional reduction from asynchronous generation: "
          f"{sum(async_gain) / len(async_gain):.1%} (paper reports ~7%)")

    results.to_json(OUTPUT)
    print(f"\nFlat ResultSet written to {OUTPUT} "
          f"({len(results)} records; reload with ResultSet.load).")


if __name__ == "__main__":
    main()
