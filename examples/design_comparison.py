"""Reduced Figure 5 / Figure 6 reproduction.

Runs all six designs on the 32-qubit benchmark suite, averaged over a few
stochastic repetitions, and prints the depth-relative-to-ideal and fidelity
tables that correspond to Figs. 5 and 6 of the paper.  Increase ``NUM_RUNS``
to 50 to match the paper's averaging.

Run with:  python examples/design_comparison.py
"""

from __future__ import annotations

from repro.analysis import comparison_report, relative_depth_report
from repro.core import PAPER_32Q_SYSTEM, run_design_comparison

NUM_RUNS = 5
BENCHMARKS = ["TLIM-32", "QAOA-r4-32", "QAOA-r8-32", "QFT-32"]


def main() -> None:
    comparisons = run_design_comparison(
        BENCHMARKS, num_runs=NUM_RUNS, system=PAPER_32Q_SYSTEM, base_seed=1
    )

    print("Figure 5 — circuit depth relative to the ideal execution")
    print(relative_depth_report(comparisons.values()))
    print()
    for name, comparison in comparisons.items():
        print(comparison_report(comparison, metric="fidelity"))
        print()

    # Headline numbers of the paper, recomputed on our simulator.
    reductions = []
    for comparison in comparisons.values():
        table = comparison.depth_table()
        reductions.append(1.0 - table["sync_buf"] / table["original"])
    print(f"Average depth reduction from buffering alone: "
          f"{sum(reductions) / len(reductions):.1%} (paper reports 61.7%)")

    async_gain = []
    for comparison in comparisons.values():
        table = comparison.depth_table()
        async_gain.append(1.0 - table["async_buf"] / table["sync_buf"])
    print(f"Additional reduction from asynchronous generation: "
          f"{sum(async_gain) / len(async_gain):.1%} (paper reports ~7%)")


if __name__ == "__main__":
    main()
