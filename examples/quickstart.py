"""Quickstart: simulate one benchmark under every DQC design.

Builds the paper's 2-node, 32-data-qubit system (10 communication and 10
buffer qubits per node, psucc = 0.4), partitions the QAOA-r4-32 benchmark
over the two nodes with the METIS-substitute multilevel partitioner, and
simulates its execution under all six designs of the evaluation, printing
depth and fidelity for each.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DQCSimulator, list_designs
from repro.analysis import format_table


def main() -> None:
    simulator = DQCSimulator()          # the paper's 32-qubit system
    benchmark = "QAOA-r4-32"

    program = simulator.prepare(benchmark)
    print(f"Benchmark {benchmark}: {program.num_qubits} qubits, "
          f"{program.local_two_qubit_count()} local 2Q gates, "
          f"{program.remote_gate_count()} remote 2Q gates\n")

    rows = []
    ideal = simulator.simulate(benchmark, design="ideal", seed=1)
    for design in list_designs():
        result = simulator.simulate(benchmark, design=design, seed=1)
        rows.append([
            design,
            f"{result.depth:.1f}",
            f"{result.depth / ideal.depth:.2f}x",
            f"{result.fidelity:.3f}",
            f"{result.mean_remote_wait():.2f}",
        ])
    print(format_table(
        ["design", "depth", "depth / ideal", "fidelity", "mean EPR wait"], rows
    ))
    print("\nKey takeaway: buffering EPR pairs (sync_buf and beyond) removes most "
          "of the entanglement-waiting latency of the original design, and the "
          "asynchronous + adaptive + pre-initialised variants close the gap to "
          "the ideal monolithic execution.")


if __name__ == "__main__":
    main()
