"""Quickstart: one declarative study over every DQC design.

Builds the paper's 2-node, 32-data-qubit system (10 communication and 10
buffer qubits per node, psucc = 0.4) and runs the QAOA-r4-32 benchmark under
all six designs of the evaluation as a single :class:`repro.Study`, printing
depth and fidelity for each from the flat result records.

The same study is available from the command line:

    python -m repro run --benchmark QAOA-r4-32 --runs 3

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro import Study
from repro.analysis import format_table

NUM_RUNS = int(os.environ.get("REPRO_RUNS", 3))


def main() -> None:
    study = Study(benchmarks="QAOA-r4-32", num_runs=NUM_RUNS, base_seed=1)
    results = study.run()

    print(f"Benchmark QAOA-r4-32: {len(results)} runs "
          f"({len(results.designs())} designs x {NUM_RUNS} seeds)\n")

    depth = results.aggregate("depth", by=["design"])
    fidelity = results.aggregate("fidelity", by=["design"])
    wait = results.aggregate("mean_remote_wait", by=["design"])
    ideal_depth = depth["ideal"].mean

    rows = [
        [design,
         f"{depth[design].mean:.1f}",
         f"{depth[design].mean / ideal_depth:.2f}x",
         f"{fidelity[design].mean:.3f}",
         f"{wait[design].mean:.2f}"]
        for design in results.designs()
    ]
    print(format_table(
        ["design", "depth", "depth / ideal", "fidelity", "mean EPR wait"], rows
    ))
    print("\nKey takeaway: buffering EPR pairs (sync_buf and beyond) removes most "
          "of the entanglement-waiting latency of the original design, and the "
          "asynchronous + adaptive + pre-initialised variants close the gap to "
          "the ideal monolithic execution.")


if __name__ == "__main__":
    main()
