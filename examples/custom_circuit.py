"""Bring your own circuit: partition and co-design-simulate a custom workload.

Shows the lower-level API: build a circuit with the IR, inspect its
interaction graph, partition it with different algorithms, pre-compile the
ASAP/ALAP segment variants used by adaptive scheduling, and execute it on a
custom architecture with an execution trace.

Run with:  python examples/custom_circuit.py
"""

from __future__ import annotations

from repro.circuits import QuantumCircuit, draw_circuit
from repro.core import SystemConfig
from repro.partitioning import InteractionGraph, distribute_circuit, partition_graph
from repro.runtime import DesignExecutor
from repro.scheduling import build_lookup_table, default_segment_length


def build_ansatz(num_qubits: int, layers: int) -> QuantumCircuit:
    """A hardware-efficient ansatz with a few long-range entanglers."""
    circuit = QuantumCircuit(num_qubits, name="custom-ansatz")
    for _ in range(layers):
        for qubit in range(num_qubits):
            circuit.ry(0.3, qubit)
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
        # Long-range interactions that will become remote gates.
        for qubit in range(0, num_qubits // 2):
            circuit.rzz(0.4, qubit, num_qubits - 1 - qubit)
    return circuit


def main() -> None:
    circuit = build_ansatz(num_qubits=12, layers=2)
    print(draw_circuit(circuit, max_layers=8))
    print()

    # Compare partitioning algorithms on the interaction graph.
    graph = InteractionGraph.from_circuit(circuit)
    for method in ("multilevel", "kl", "spectral", "contiguous"):
        partition = partition_graph(graph, num_blocks=2, seed=0, method=method)
        print(f"{method:<11s} cut = {partition.cut_weight(graph):.0f} "
              f"block sizes = {partition.block_sizes()}")
    print()

    # Distribute with the default (METIS-substitute) partitioner.
    program = distribute_circuit(circuit, num_nodes=2, seed=0)
    print(f"remote gates after distribution: {program.remote_gate_count()} of "
          f"{program.circuit.num_two_qubit_gates()} two-qubit gates")

    # Inspect the adaptive-scheduling lookup table.
    system = SystemConfig(data_qubits_per_node=6, comm_qubits_per_node=5,
                          buffer_qubits_per_node=5)
    architecture = system.build_architecture()
    segment_length = default_segment_length(
        architecture.comm_pairs_between(0, 1),
        architecture.physics.epr_success_probability,
    )
    table = build_lookup_table(program.circuit, segment_length)
    print(f"adaptive lookup table: {table.num_segments} segments of "
          f"m = {segment_length} remote gates\n")

    # Execute under the full co-design and show the schedule of remote gates.
    executor = DesignExecutor(architecture, "init_buf", seed=3, collect_trace=True)
    result = executor.run(program)
    print(f"init_buf depth = {result.depth:.1f}, fidelity = {result.fidelity:.3f}, "
          f"EPR pairs consumed = {result.num_remote}")
    print("\nFirst remote-gate schedule entries:")
    remote_entries = executor.last_trace.remote_entries()[:5]
    for entry in remote_entries:
        print(f"  gate {entry.gate_index:>3d} on qubits {entry.qubits} "
              f"start {entry.start:6.2f} finish {entry.finish:6.2f} "
              f"link fidelity {entry.link_fidelity:.3f}")


if __name__ == "__main__":
    main()
