"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` also works in
offline environments where PEP 517 build isolation cannot download build
requirements.
"""

from setuptools import setup

setup()
