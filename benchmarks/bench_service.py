"""Service benchmark — submission latency and job throughput.

Measures the overhead the :mod:`repro.service` daemon adds around the
execution engine:

* **submit latency** — wall-clock of one ``POST /jobs`` round-trip
  (spec validation + plan expansion + journal fsync + enqueue), measured
  per submission across a batch of distinct specs, and
* **throughput** — end-to-end jobs per minute for that batch: first
  submission to last job ``done``, fetched through the API.

Emits ``BENCH_service.json`` next to the repository root so runs can be
archived and compared.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from conftest import backend_name, emit, repetitions
from repro.service import ServiceClient, ServiceConfig, StudyDaemon

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

NUM_JOBS = 8

SYSTEM = {"data_qubits_per_node": 16, "comm_qubits_per_node": 4,
          "buffer_qubits_per_node": 4}


def _spec(index: int) -> dict:
    # Distinct base seeds → distinct plans → every job does real work in
    # its own store (no resume shortcuts flattering the numbers).
    return {"benchmarks": ["TLIM-32"], "designs": ["ideal", "original"],
            "num_runs": repetitions(), "base_seed": 1 + index,
            "system": dict(SYSTEM), "name": f"bench-service-{index}"}


def test_submit_latency_and_throughput(tmp_path):
    daemon = StudyDaemon(ServiceConfig(data_root=tmp_path / "svc", port=0,
                                       backend=backend_name()))
    daemon.start()
    try:
        client = ServiceClient(daemon.address, client="bench")
        batch_start = time.perf_counter()
        latencies = []
        jobs = []
        for index in range(NUM_JOBS):
            start = time.perf_counter()
            jobs.append(client.submit(_spec(index)))
            latencies.append(time.perf_counter() - start)
        for job in jobs:
            status = client.wait(job["id"], timeout=600)
            assert status["state"] == "done", status
        elapsed = time.perf_counter() - batch_start
        # The fetch is part of the service contract; include one round-trip
        # so a pathologically slow results path would show up here.
        fetch_start = time.perf_counter()
        text = client.results(jobs[-1]["id"])
        fetch_s = time.perf_counter() - fetch_start
        assert json.loads(text)["records"], "fetched results hold no records"
    finally:
        daemon.stop(timeout=10)

    jobs_per_minute = NUM_JOBS / elapsed * 60.0
    payload = {
        "num_jobs": NUM_JOBS,
        "runs_per_job": repetitions() * 2,
        "backend": backend_name(),
        "submit_latency_ms": {
            "mean": round(statistics.mean(latencies) * 1e3, 3),
            "median": round(statistics.median(latencies) * 1e3, 3),
            "max": round(max(latencies) * 1e3, 3),
        },
        "batch_elapsed_s": round(elapsed, 3),
        "jobs_per_minute": round(jobs_per_minute, 2),
        "results_fetch_s": round(fetch_s, 4),
    }
    _merge_payload({"service": payload})
    emit(
        "service: submission latency / throughput",
        "\n".join([
            f"jobs               : {NUM_JOBS} x {repetitions() * 2} runs "
            f"({backend_name()} backend)",
            f"submit latency     : median "
            f"{payload['submit_latency_ms']['median']:.1f} ms, max "
            f"{payload['submit_latency_ms']['max']:.1f} ms",
            f"batch wall-clock   : {elapsed:.2f} s "
            f"({jobs_per_minute:.0f} jobs/min)",
            f"results fetch      : {fetch_s * 1e3:.1f} ms",
        ]),
    )


def _merge_payload(update: dict) -> None:
    payload = {}
    if OUTPUT_PATH.exists():
        payload = json.loads(OUTPUT_PATH.read_text())
    payload.update(update)
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
