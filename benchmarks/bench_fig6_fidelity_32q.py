"""Figure 6 — circuit fidelity of the 32-qubit benchmarks across designs.

Regenerates the estimated output fidelity of every design for the four
32-qubit benchmarks (the series plotted in Fig. 6) and checks the paper's
qualitative findings: buffered asynchronous designs reach the best fidelity,
the original design the worst, and the ideal execution upper-bounds all.
"""

from __future__ import annotations

import pytest

from conftest import backend_name, emit, repetitions
from repro.analysis import comparison_report
from repro.core import PAPER_32Q_SYSTEM
from repro.study import Study

BENCHMARKS_32Q = ["TLIM-32", "QAOA-r4-32", "QAOA-r8-32", "QFT-32"]


@pytest.fixture(scope="module")
def fig6_results():
    with Study(benchmarks=BENCHMARKS_32Q, num_runs=repetitions(),
               system=PAPER_32Q_SYSTEM, base_seed=11,
               backend=backend_name(), name="fig6-fidelity-32q") as study:
        return study.run().to_comparisons()


def test_fig6_fidelity_series(benchmark, fig6_results):
    """Print the Fig. 6 fidelity panels and check the cross-design ordering."""
    def render_all():
        return "\n\n".join(
            comparison_report(comparison, "fidelity")
            for comparison in fig6_results.values()
        )

    emit("Figure 6 — fidelity per design", benchmark.pedantic(render_all, rounds=1,
                                                              iterations=1))

    for name, comparison in fig6_results.items():
        fidelity = comparison.fidelity_table()
        # Ideal execution is the upper bound.
        assert all(fidelity["ideal"] >= fidelity[d] - 1e-9 for d in fidelity)
        # Asynchronous buffered designs do not lose to the synchronous one.
        assert fidelity["async_buf"] >= fidelity["sync_buf"] * 0.97
        # Adaptive scheduling preserves the asynchronous fidelity.
        assert fidelity["adapt_buf"] == pytest.approx(fidelity["async_buf"], rel=0.1)
        # The original design never beats the asynchronous buffered design.
        assert fidelity["original"] <= fidelity["async_buf"] * 1.05


def test_fig6_async_improvement_over_original(fig6_results):
    """Async buffered fidelity improves on the original design (paper: ~2x average)."""
    ratios = []
    for comparison in fig6_results.values():
        fidelity = comparison.fidelity_table()
        if fidelity["original"] > 1e-6:
            ratios.append(fidelity["async_buf"] / fidelity["original"])
    average = sum(ratios) / len(ratios)
    emit("Figure 6 — async_buf / original fidelity ratio",
         f"mean ratio: {average:.2f}x (paper: ~2x)")
    assert average >= 1.0
