"""Figure 7 — QAOA-r8-32 depth for different communication / buffer qubit counts.

Regenerates the two panels of Fig. 7: the circuit depth of the buffered
designs on QAOA-r8-32 when every node has 15/15 and 20/20 communication /
buffer qubits (plus the paper's base 10/10 case for reference), and checks
that more communication qubits push the depth toward the ideal.
"""

from __future__ import annotations

import pytest

from conftest import backend_name, emit, repetitions
from repro.analysis import comparison_report, sweep_report
from repro.core import PAPER_32Q_SYSTEM
from repro.study import Axis, Study

DESIGNS = ["sync_buf", "async_buf", "adapt_buf", "init_buf", "ideal"]
COUNTS = [10, 15, 20]


@pytest.fixture(scope="module")
def fig7_results():
    with Study(
        benchmarks="QAOA-r8-32", designs=DESIGNS,
        axes=[Axis(("comm_qubits_per_node", "buffer_qubits_per_node"),
                   [(count, count) for count in COUNTS])],
        num_runs=repetitions(), base_seed=21, system=PAPER_32Q_SYSTEM,
        backend=backend_name(), name="fig7-comm-sweep",
    ) as study:
        return study.run().to_comparisons(by="comm_qubits_per_node")


def test_fig7_comm_qubit_sweep(benchmark, fig7_results):
    """Print the Fig. 7 panels and check the scaling trend."""
    def render():
        blocks = [sweep_report(fig7_results, "depth")]
        for count, comparison in fig7_results.items():
            blocks.append(
                f"#comm_qb = {count}, #buff_qb = {count}\n"
                + comparison_report(comparison, "depth")
            )
        return "\n\n".join(blocks)

    emit("Figure 7 — QAOA-r8-32 depth vs communication/buffer qubits",
         benchmark.pedantic(render, rounds=1, iterations=1))

    # More communication qubits reduce (or preserve) the depth of every design.
    for design in ("sync_buf", "async_buf", "adapt_buf", "init_buf"):
        depths = [fig7_results[count].depth_table()[design] for count in COUNTS]
        assert depths[-1] <= depths[0] * 1.05
    # init_buf consistently delivers the best performance (paper's finding).
    for count in COUNTS:
        table = fig7_results[count].depth_table()
        assert table["init_buf"] <= min(table["sync_buf"], table["async_buf"],
                                        table["adapt_buf"]) * 1.02
    # With 20 communication qubits init_buf approaches the ideal depth.
    final = fig7_results[20].depth_table()
    assert final["init_buf"] <= 1.6 * final["ideal"]


def test_fig7_fidelity_stays_flat(fig7_results):
    """The paper notes fidelity barely changes across the sweep."""
    fidelities = [fig7_results[count].fidelity_table()["adapt_buf"]
                  for count in COUNTS]
    emit("Figure 7 — adapt_buf fidelity across the sweep",
         ", ".join(f"{count}: {value:.3f}" for count, value in zip(COUNTS, fidelities)))
    spread = max(fidelities) - min(fidelities)
    assert spread <= 0.15
