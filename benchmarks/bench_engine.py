"""Engine benchmark — compile-cache speedup and parallel backend wall-clock.

Measures the two wins of the compile-once / execute-many engine:

* **compile cache** — wall-clock of compiling the benchmarks × designs grid
  cold versus re-compiling it against a warm artifact cache (the situation
  of every repetition after the first, and of sweep steps that share a
  cache),
* **persistent compile cache** — wall-clock of a *fresh* cache instance
  compiling the grid against a populated ``--cache-dir`` /
  ``REPRO_CACHE_DIR`` directory (the cross-process situation: a new CLI
  invocation starting with compilation already paid), asserting the second
  instance compiles with zero misses, and
* **execution backends** — wall-clock of replaying the full seed × cell
  grid through :class:`SerialBackend` versus :class:`ProcessPoolBackend`,
  asserting the results are identical.

Emits ``BENCH_engine.json`` next to the repository root so runs can be
archived and compared.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from conftest import emit, repetitions
from repro.core import ExperimentConfig, SystemConfig
from repro.engine import (
    ArtifactCache,
    CellCompiler,
    ExperimentEngine,
    PersistentArtifactCache,
    ProcessPoolBackend,
)
from repro.engine.backends import ExecutionTask

BENCHMARKS = ("TLIM-32", "QAOA-r4-32")
DESIGNS = ("original", "async_buf", "adapt_buf", "init_buf")
SYSTEM = SystemConfig()
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _config(num_runs: int) -> ExperimentConfig:
    return ExperimentConfig(
        benchmarks=BENCHMARKS, designs=DESIGNS, num_runs=num_runs,
        base_seed=1, system=SYSTEM,
    )


def _compile_grid(cache: ArtifactCache) -> float:
    compiler = CellCompiler(system=SYSTEM, cache=cache)
    start = time.perf_counter()
    for benchmark in BENCHMARKS:
        for design in DESIGNS:
            compiler.compile(benchmark, design)
    return time.perf_counter() - start


def test_engine_benchmark():
    """Time the compile cache and the execution backends, emit JSON."""
    num_runs = repetitions(default=3)
    config = _config(num_runs)

    # --- compile stage: cold vs warm cache -----------------------------
    cold_s = _compile_grid(ArtifactCache())
    warm_cache = ArtifactCache()
    _compile_grid(warm_cache)
    warm_s = _compile_grid(warm_cache)
    compile_speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    # --- persistent cache: fresh instance against a populated dir ------
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    try:
        persist_cold_s = _compile_grid(PersistentArtifactCache(cache_dir))
        # A brand-new instance has an empty memory tier — every artifact
        # must come off disk, which is exactly what a new process pays.
        persist_warm_cache = PersistentArtifactCache(cache_dir)
        persist_warm_s = _compile_grid(persist_warm_cache)
        persist_stats = persist_warm_cache.stats()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    persist_speedup = (persist_cold_s / persist_warm_s if persist_warm_s > 0
                       else float("inf"))

    # --- execute stage: serial vs process pool -------------------------
    serial_engine = ExperimentEngine(config, backend="serial")
    cells = serial_engine.compile_grid()
    serial_engine.execute_cells(cells)  # warm up (first-touch allocations)
    start = time.perf_counter()
    serial_results = serial_engine.execute_cells(cells)
    serial_s = time.perf_counter() - start

    workers = min(4, os.cpu_count() or 1)
    with ProcessPoolBackend(max_workers=workers) as backend:
        process_engine = ExperimentEngine(config, backend=backend,
                                          compiler=serial_engine.compiler)
        # Warm the pool (worker spawn) outside the timed region with one
        # real task; an empty batch would return before creating workers.
        backend.execute([ExecutionTask(cells[0], config.base_seed)])
        start = time.perf_counter()
        process_results = process_engine.execute_cells(cells)
        process_s = time.perf_counter() - start

    for serial_cell, process_cell in zip(serial_results, process_results):
        for serial_run, process_run in zip(serial_cell, process_cell):
            assert serial_run.makespan == process_run.makespan
            assert serial_run.fidelity == process_run.fidelity

    # --- report ---------------------------------------------------------
    tasks = len(cells) * num_runs
    payload = {
        "benchmarks": list(BENCHMARKS),
        "designs": list(DESIGNS),
        "num_runs": num_runs,
        "tasks": tasks,
        "compile": {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": compile_speedup,
            "cache_stats": warm_cache.stats(),
        },
        "compile_persistent": {
            "cold_s": persist_cold_s,
            "warm_s": persist_warm_s,
            "speedup": persist_speedup,
            "cache_stats": persist_stats,
        },
        "execute": {
            "serial_s": serial_s,
            "process_s": process_s,
            "process_workers": workers,
            "speedup": serial_s / process_s if process_s > 0 else float("inf"),
            "identical_results": True,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "Engine — compile cache and backend wall-clock",
        "\n".join([
            f"grid: {len(BENCHMARKS)} benchmarks x {len(DESIGNS)} designs "
            f"x {num_runs} runs ({tasks} tasks)",
            f"compile cold:   {cold_s * 1e3:8.1f} ms",
            f"compile warm:   {warm_s * 1e3:8.1f} ms  "
            f"(speedup {compile_speedup:.0f}x)",
            f"compile disk:   {persist_warm_s * 1e3:8.1f} ms  "
            f"(fresh instance, speedup {persist_speedup:.0f}x, "
            f"misses={persist_stats['misses']})",
            f"execute serial: {serial_s * 1e3:8.1f} ms",
            f"execute pool:   {process_s * 1e3:8.1f} ms  "
            f"({workers} workers, identical results)",
            f"written: {OUTPUT_PATH.name}",
        ]),
    )

    # The warm compile must be served from the cache, i.e. dramatically
    # cheaper than the cold compile.
    assert compile_speedup > 5
    # The fresh instance must compile nothing at all — every artifact comes
    # off disk (the cross-process contract of the persistent tier).
    assert persist_stats["misses"] == 0
    assert persist_stats["disk_hits"] > 0
