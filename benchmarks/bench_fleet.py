"""Fleet benchmark — chunk throughput and cell-shipping economy.

Measures the worker-fleet backend end to end on localhost:

* **chunk throughput** — chunks per second through a coordinator feeding
  two in-process workers (socket round-trips, pickling, and lease
  bookkeeping included), against the same sweep run serially, and
* **shipping economy** — how many compiled-cell payloads crossed the
  wire, pinned structurally: each cell reaches each worker **at most
  once** no matter how many chunks it executes.

CI runs this on one CPU, so the numbers are not a speedup claim — the
assertions are structural (byte-identical results, ship-at-most-once,
every chunk accounted for), and the throughput figure tracks protocol
overhead over time.  Emits into ``BENCH_fleet.json``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from conftest import emit, repetitions
from repro.engine.backends import SerialBackend
from repro.engine.cache import ArtifactCache
from repro.fleet import FleetBackend, FleetWorker
from repro.study.study import Study

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

NUM_WORKERS = 2

SYSTEM = {"data_qubits_per_node": 16, "comm_qubits_per_node": 4,
          "buffer_qubits_per_node": 4}


def _spec() -> dict:
    return {"benchmarks": ["TLIM-32", "QAOA-r4-16"],
            "designs": ["ideal", "original"],
            "num_runs": max(repetitions() * 4, 8),
            "system": dict(SYSTEM)}


def test_fleet_chunk_throughput(tmp_path):
    spec = _spec()
    with Study.from_spec(spec, backend=SerialBackend()) as study:
        serial_start = time.perf_counter()
        baseline = study.run().to_json()
        serial_s = time.perf_counter() - serial_start

    backend = FleetBackend(listen="127.0.0.1:0", chunksize=1, poll=0.02)
    backend.start()
    workers = [FleetWorker(backend.address, name=f"bench-w{i}", quiet=True,
                           cache=ArtifactCache())
               for i in range(NUM_WORKERS)]
    threads = [threading.Thread(target=worker.run, daemon=True)
               for worker in workers]
    for thread in threads:
        thread.start()
    try:
        with Study.from_spec(spec, backend=backend) as study:
            fleet_start = time.perf_counter()
            fleet_json = study.run().to_json()
            fleet_s = time.perf_counter() - fleet_start
        stats = backend.stats()
    finally:
        for worker in workers:
            worker.stop()
        backend.close()
        for thread in threads:
            thread.join(timeout=10)

    # Structural assertions — meaningful even on a one-CPU CI runner.
    assert fleet_json == baseline, "fleet results diverge from serial"
    num_cells = len(spec["benchmarks"]) * len(spec["designs"])
    total_chunks = num_cells * spec["num_runs"]  # chunksize=1
    assert stats["chunks_done"] == total_chunks
    assert stats["workers_seen"] == NUM_WORKERS
    assert stats["max_ships_per_cell_worker"] == 1, \
        "a compiled cell was shipped twice to one worker"
    assert stats["cells_shipped"] <= num_cells * NUM_WORKERS

    chunks_per_s = total_chunks / fleet_s
    payload = {
        "workers": NUM_WORKERS,
        "total_chunks": total_chunks,
        "cells": num_cells,
        "serial_elapsed_s": round(serial_s, 3),
        "fleet_elapsed_s": round(fleet_s, 3),
        "chunks_per_second": round(chunks_per_s, 1),
        "cells_shipped": stats["cells_shipped"],
        "chunks_stolen": stats["chunks_stolen"],
        "duplicate_results": stats["duplicate_results"],
        "max_ships_per_cell_worker": stats["max_ships_per_cell_worker"],
    }
    _merge_payload({"fleet": payload})
    emit(
        "fleet: chunk throughput / shipping economy",
        "\n".join([
            f"sweep              : {total_chunks} chunk-1 leases over "
            f"{num_cells} cells, {NUM_WORKERS} localhost workers",
            f"serial wall-clock  : {serial_s:.2f} s",
            f"fleet wall-clock   : {fleet_s:.2f} s "
            f"({chunks_per_s:.0f} chunks/s incl. socket round-trips)",
            f"cells shipped      : {stats['cells_shipped']} "
            f"(cap {num_cells * NUM_WORKERS}; ≤1 per worker per cell)",
            f"stolen / duplicate : {stats['chunks_stolen']} / "
            f"{stats['duplicate_results']}",
        ]),
    )


def _merge_payload(update: dict) -> None:
    payload = {}
    if OUTPUT_PATH.exists():
        payload = json.loads(OUTPUT_PATH.read_text())
    payload.update(update)
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
