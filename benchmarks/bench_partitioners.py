"""Partitioner benchmark — wall-clock and cut quality per algorithm.

Runs every registered real partitioning algorithm (the ``precomputed``
passthrough is skipped) over the Table I benchmark families and reports, per
(benchmark, partitioner) cell:

* **partition time** — mean wall-clock of partitioning the interaction
  graph (the compile-stage cost that a ``partition_method`` axis multiplies
  across a study), and
* **cut quality** — the cut weight (= remote two-qubit gates before
  commutation-aware scheduling), the resulting remote fraction, and the
  block imbalance.

Emits ``BENCH_partitioners.json`` next to the repository root so runs can be
archived and compared.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit, repetitions
from repro.benchmarks import build_benchmark
from repro.partitioning import (
    InteractionGraph,
    distribute_circuit,
    get_partitioner,
    list_partitioners,
)

BENCHMARKS = ("TLIM-32", "QAOA-r4-32", "QAOA-r8-32", "QFT-32")
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_partitioners.json"


def test_partitioner_benchmark():
    """Time and score every algorithm on every benchmark family, emit JSON."""
    reps = repetitions(default=3)
    algorithms = [name for name in list_partitioners()
                  if name != "precomputed"]

    cells = []
    for benchmark in BENCHMARKS:
        circuit = build_benchmark(benchmark)
        graph = InteractionGraph.from_circuit(circuit)
        for name in algorithms:
            partitioner = get_partitioner(name)
            start = time.perf_counter()
            for repetition in range(reps):
                partition = partitioner.partition(graph, num_blocks=2, seed=0)
            partition_ms = (time.perf_counter() - start) / reps * 1e3
            program = distribute_circuit(circuit, method=name, seed=0)
            cells.append({
                "benchmark": benchmark,
                "partitioner": name,
                "partition_ms": partition_ms,
                "cut_weight": partition.cut_weight(graph),
                "imbalance": partition.imbalance(),
                "remote_2q": program.remote_gate_count(),
                "remote_fraction": program.remote_fraction(),
            })

    payload = {
        "benchmarks": list(BENCHMARKS),
        "partitioners": algorithms,
        "repetitions": reps,
        "cells": cells,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"{'benchmark':<11} {'partitioner':<20} {'time':>9} "
        f"{'cut':>6} {'remote%':>8} {'imbal':>6}"
    ]
    for cell in cells:
        lines.append(
            f"{cell['benchmark']:<11} {cell['partitioner']:<20} "
            f"{cell['partition_ms']:7.1f}ms {cell['cut_weight']:6.0f} "
            f"{cell['remote_fraction'] * 100:7.1f}% "
            f"{cell['imbalance']:6.2f}"
        )
    lines.append(f"written: {OUTPUT_PATH.name}")
    emit("Partitioners — wall-clock and cut quality", "\n".join(lines))

    # Sanity: every algorithm produced a feasible two-block partition, and
    # the METIS-style baseline is never beaten by the contiguous strawman.
    by_cell = {(c["benchmark"], c["partitioner"]): c for c in cells}
    for benchmark in BENCHMARKS:
        assert by_cell[(benchmark, "multilevel")]["cut_weight"] <= \
            by_cell[(benchmark, "contiguous")]["cut_weight"]
