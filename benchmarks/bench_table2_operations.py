"""Table II — quantum operation properties used by the simulator."""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analysis import table2_report
from repro.hardware import GateFidelities, GateTimes, HeraldedLinkModel, PhysicalConstants


def test_table2_report(benchmark):
    """Print Table II and check the configuration constants."""
    text = benchmark.pedantic(table2_report, rounds=1, iterations=1)
    emit("Table II — quantum operation properties", text)

    times = GateTimes()
    fidelities = GateFidelities()
    assert times.single_qubit == 0.1 and fidelities.single_qubit == 0.9999
    assert times.local_cnot == 1.0 and fidelities.local_cnot == 0.999
    assert times.measurement == 5.0 and fidelities.measurement == 0.998
    assert times.epr_generation_cycle == 10.0 and fidelities.epr_pair == 0.99
    assert PhysicalConstants().decoherence_rate_per_unit == pytest.approx(0.002)


def test_heralded_link_model_consistency(benchmark):
    """The physical link model reproduces T_EG ~ 10 local CNOTs and psucc <= 1/2."""
    model = benchmark.pedantic(HeraldedLinkModel, rounds=1, iterations=1)
    constants = PhysicalConstants()
    emit(
        "Heralded entanglement generation (Sec. III-A physical model)",
        f"success probability per attempt : {model.success_probability:.3f}\n"
        f"cycle time                      : {model.cycle_time_ns:.0f} ns "
        f"({model.cycle_time_units(constants):.1f} local CNOTs)\n"
        f"fibre transmission efficiency   : {model.transmission_efficiency:.4f}",
    )
    assert model.success_probability <= 0.5
    assert 8.0 <= model.cycle_time_units(constants) <= 12.0
