"""Table I — benchmark properties (gate counts after 2-node partitioning).

Regenerates the rows of Table I: for every benchmark the number of qubits,
local two-qubit gates, remote two-qubit gates, single-qubit gates, and depth,
using the METIS-substitute multilevel partitioner, and prints them next to
the values reported in the paper.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analysis import table1_report
from repro.benchmarks import get_benchmark, list_benchmarks
from repro.partitioning import distribute_circuit


def _measured_properties():
    measured = {}
    paper = {}
    for name in list_benchmarks():
        spec = get_benchmark(name)
        program = distribute_circuit(spec.build(), num_nodes=2, seed=0)
        measured[name] = program.properties()
        paper[name] = {
            "local_2q": spec.paper_local_2q,
            "remote_2q": spec.paper_remote_2q,
            "single_q": spec.paper_1q,
            "depth": spec.paper_depth,
        }
    return measured, paper


def test_table1_report(benchmark):
    """Partition every benchmark and print the Table I comparison."""
    measured, paper = benchmark.pedantic(_measured_properties, rounds=1, iterations=1)
    emit("Table I — benchmark properties (measured vs paper)",
         table1_report(measured, paper))

    # Structural sanity: the exactly-reproducible rows must match the paper.
    assert measured["TLIM-32"]["remote_2q"] == 10
    assert measured["TLIM-32"]["local_2q"] == 300
    assert measured["QFT-32"]["remote_2q"] == 256
    assert measured["QFT-32"]["local_2q"] == 240
    # QAOA rows use our own random-regular instances: magnitudes must agree.
    for name in ("QAOA-r4-32", "QAOA-r8-32", "QAOA-r4-64", "QAOA-r8-64"):
        spec = get_benchmark(name)
        total_measured = measured[name]["local_2q"] + measured[name]["remote_2q"]
        total_paper = spec.paper_local_2q + spec.paper_remote_2q
        assert abs(total_measured - total_paper) / total_paper < 0.1
