"""Study benchmark — plan-expansion overhead and cross-grid cache sharing.

Measures the two costs/wins of the declarative study layer:

* **plan expansion** — wall-clock of expanding a large multi-axis grid into
  its deduplicated :class:`~repro.study.plan.ExecutionPlan` (pure data work,
  no compilation), compared against the study's actual execution time, and
* **cache sharing** — compile-artifact reuse across a 2-axis grid
  (``epr_success_probability`` × design): the partitioned program must be
  compiled once for the whole grid regardless of how many system variants
  the grid visits, versus once *per variant* with isolated caches.

Emits ``BENCH_study.json`` next to the repository root so runs can be
archived and compared.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit, repetitions
from repro.core import SystemConfig
from repro.engine import ArtifactCache
from repro.study import Axis, Study

SYSTEM = SystemConfig(data_qubits_per_node=16, comm_qubits_per_node=4,
                      buffer_qubits_per_node=4)
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_study.json"

PSUCC_VALUES = (0.2, 0.4, 0.8)
DESIGNS = ("original", "async_buf", "adapt_buf", "ideal")


def _two_axis_study(cache: ArtifactCache) -> Study:
    return Study(
        benchmarks="TLIM-32",
        designs=list(DESIGNS),
        axes={"epr_success_probability": list(PSUCC_VALUES)},
        num_runs=repetitions(),
        system=SYSTEM,
        cache=cache,
        name="bench-psucc-x-design",
    )


def test_plan_expansion_overhead():
    """Expanding a ~1000-cell grid is pure data work and stays cheap."""
    study = Study(
        benchmarks=["TLIM-32", "QFT-32"],
        designs=list(DESIGNS),
        axes={
            "epr_success_probability": [round(0.05 * i, 2)
                                        for i in range(1, 17)],
            "comm_qubits_per_node": [2, 4, 6, 8],
        },
        num_runs=repetitions(),
        system=SYSTEM,
        name="bench-plan-expansion",
    )
    start = time.perf_counter()
    plan = study.plan()
    cells = len(plan)  # forces the lazy expansion
    expansion_s = time.perf_counter() - start

    assert cells == 2 * len(DESIGNS) * 16 * 4
    assert plan.num_tasks == cells * repetitions()
    # Expansion must be negligible next to any real execution (sub-second
    # for a thousand cells even on slow machines).
    assert expansion_s < 1.0

    emit(
        "Study — plan expansion overhead",
        f"{cells} cells / {plan.num_tasks} tasks expanded in "
        f"{expansion_s * 1e3:.1f} ms "
        f"({expansion_s / cells * 1e6:.0f} us per cell)",
    )
    _merge_payload({"plan_expansion": {
        "cells": cells,
        "tasks": plan.num_tasks,
        "expansion_s": expansion_s,
    }})


def test_cache_sharing_across_two_axis_grid():
    """One shared cache partitions the benchmark once for the whole grid."""
    # Warm process-wide state (the teleportation-fidelity lru_cache, which
    # keys on psucc-dependent parameters, and first-touch allocations)
    # outside the timed regions so the two timed paths compare like with
    # like: the comparison below is about compile-artifact reuse only.
    _two_axis_study(ArtifactCache()).run()

    shared_cache = ArtifactCache()
    start = time.perf_counter()
    shared_results = _two_axis_study(shared_cache).run()
    shared_s = time.perf_counter() - start

    # The same grid with one isolated cache per system variant re-partitions
    # per psucc value (the pre-study sweep behaviour at best).
    isolated_s = 0.0
    isolated_programs = 0
    for psucc in PSUCC_VALUES:
        cache = ArtifactCache()
        study = Study(
            benchmarks="TLIM-32", designs=list(DESIGNS),
            num_runs=repetitions(),
            system=SystemConfig(
                data_qubits_per_node=16, comm_qubits_per_node=4,
                buffer_qubits_per_node=4, epr_success_probability=psucc,
            ),
            cache=cache,
        )
        start = time.perf_counter()
        study.run()
        isolated_s += time.perf_counter() - start
        isolated_programs += cache.count("program")

    assert shared_cache.count("program") == 1
    assert isolated_programs == len(PSUCC_VALUES)
    assert len(shared_results) == len(PSUCC_VALUES) * len(DESIGNS) * repetitions()

    payload = {
        "grid": {
            "benchmark": "TLIM-32",
            "designs": list(DESIGNS),
            "epr_success_probability": list(PSUCC_VALUES),
            "num_runs": repetitions(),
        },
        "shared_cache": {
            "wall_s": shared_s,
            "programs_compiled": shared_cache.count("program"),
            "cells": shared_cache.count("cell"),
            "stats": shared_cache.stats(),
        },
        "isolated_caches": {
            "wall_s": isolated_s,
            "programs_compiled": isolated_programs,
        },
    }
    _merge_payload({"cache_sharing": payload})

    emit(
        "Study — cache sharing across a 2-axis grid",
        "\n".join([
            f"grid: {len(PSUCC_VALUES)} psucc x {len(DESIGNS)} designs "
            f"x {repetitions()} runs",
            f"shared cache:   {shared_s * 1e3:8.1f} ms  "
            f"({shared_cache.count('program')} program compile)",
            f"isolated caches:{isolated_s * 1e3:8.1f} ms  "
            f"({isolated_programs} program compiles)",
            f"written: {OUTPUT_PATH.name}",
        ]),
    )


def _merge_payload(update: dict) -> None:
    payload = {}
    if OUTPUT_PATH.exists():
        try:
            payload = json.loads(OUTPUT_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
