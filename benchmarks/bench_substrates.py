"""Micro-benchmarks of the heavy substrates (partitioner, teleportation model).

Not a figure of the paper — these time the two computational hot spots of the
reproduction so regressions in the substrates are visible in CI.
"""

from __future__ import annotations

from repro.benchmarks import build_benchmark, qft_circuit
from repro.noise.teleportation import teleported_cnot_average_fidelity
from repro.partitioning import InteractionGraph, multilevel_bisection
from repro.runtime import execute_design
from repro.hardware import two_node_architecture
from repro.partitioning import distribute_circuit


def test_partitioner_speed_qft32(benchmark):
    """Multilevel bisection of the densest benchmark graph (QFT-32)."""
    graph = InteractionGraph.from_circuit(qft_circuit(32))
    partition = benchmark(lambda: multilevel_bisection(graph, seed=0))
    assert partition.num_blocks == 2


def test_teleportation_fidelity_speed(benchmark):
    """Density-matrix evaluation of the teleported CNOT (cache-miss path)."""
    counter = {"calls": 0}

    def evaluate():
        counter["calls"] += 1
        # Vary the fidelity slightly so the lru_cache does not short-circuit.
        return teleported_cnot_average_fidelity(0.95 + 1e-6 * (counter["calls"] % 50))

    value = benchmark(evaluate)
    assert 0.9 < value < 1.0


def test_single_run_speed_qaoa_r8_32(benchmark):
    """One full async_buf execution of QAOA-r8-32 (dominant cost of Fig. 5/6)."""
    architecture = two_node_architecture()
    program = distribute_circuit(build_benchmark("QAOA-r8-32"), num_nodes=2, seed=0)
    result = benchmark.pedantic(
        lambda: execute_design(program, architecture, "async_buf", seed=1),
        rounds=3, iterations=1,
    )
    assert result.depth > 0
