"""Runtime benchmark — execution cores and chunked process dispatch.

Measures the wins of the post-legacy execution cores on a fig5-style sweep
(TLIM-32 + QAOA-r4-32, all six designs):

* **executor core** — wall-clock of replaying the full grid through the
  legacy per-gate :class:`DesignExecutor` (``REPRO_EXEC=legacy``) versus
  the batched gate-stream replay, asserting the per-run results are
  identical,
* **vectorized kernel** — wall-clock of the batched per-seed replay versus
  the cross-seed :class:`VectorizedExecutor` (``REPRO_EXEC=vector``) at a
  large batch size (>= 64 seeds), where one 2-D numpy pass per gate stream
  amortises the per-gate cost over the whole batch, and
* **dispatch granularity** — wall-clock of the serial backend versus the
  process-pool backend dispatching ``(cell, seed-chunk)`` batches.

Acts as the CI perf-smoke gate: the run *fails* if the batched core is
slower than the legacy core, if the vectorized core regresses against the
batched core at the large batch size (beyond a shared-machine noise
allowance), or if any result diverges.  Emits
``BENCH_runtime.json`` next to the repository root so trajectory points can
be archived and compared.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit, repetitions
from repro.core import SystemConfig
from repro.engine import CellCompiler, ProcessPoolBackend, SerialBackend
from repro.engine.backends import ExecutionTask
from repro.runtime import list_designs

BENCHMARKS = ("TLIM-32", "QAOA-r4-32")
DESIGNS = tuple(list_designs())
SYSTEM = SystemConfig()
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


#: Timed repetitions per measurement; the minimum is reported so scheduler
#: noise on shared machines does not dominate the comparison.
_REPEATS = 3


def _time_grid(cells, seeds, mode):
    """Replay every cell under every seed in one mode; (seconds, results)."""
    best = float("inf")
    results = None
    for _ in range(_REPEATS):
        start = time.perf_counter()
        results = [cell.execute_batch(seeds, mode=mode) for cell in cells]
        best = min(best, time.perf_counter() - start)
    return best, results


def _time_backend(backend, tasks):
    """Execute the task grid through a backend; (best seconds, results)."""
    best = float("inf")
    results = None
    for _ in range(_REPEATS):
        start = time.perf_counter()
        results = backend.execute(tasks)
        best = min(best, time.perf_counter() - start)
    return best, results


def test_runtime_benchmark():
    """Time legacy vs batched and serial vs process dispatch, emit JSON."""
    num_runs = max(8, repetitions(default=8))
    seeds = list(range(1, num_runs + 1))

    compiler = CellCompiler(system=SYSTEM)
    cells_by_benchmark = {
        benchmark: [compiler.compile(benchmark, design) for design in DESIGNS]
        for benchmark in BENCHMARKS
    }
    all_cells = [cell for cells in cells_by_benchmark.values() for cell in cells]

    # Warm both cores once per cell (fidelity caches, stream columns) so the
    # timed regions compare steady-state replay, not first-touch setup.
    for cell in all_cells:
        cell.execute_batch(seeds[:1], mode="legacy")
        cell.execute_batch(seeds[:1], mode="batched")

    # --- executor core: legacy vs batched, per benchmark ----------------
    per_benchmark = {}
    legacy_total = batched_total = 0.0
    identical = True
    for benchmark, cells in cells_by_benchmark.items():
        legacy_s, legacy_results = _time_grid(cells, seeds, "legacy")
        batched_s, batched_results = _time_grid(cells, seeds, "batched")
        identical = identical and legacy_results == batched_results
        legacy_total += legacy_s
        batched_total += batched_s
        per_benchmark[benchmark] = {
            "legacy_s": legacy_s,
            "batched_s": batched_s,
            "speedup": legacy_s / batched_s if batched_s > 0 else float("inf"),
        }
    executor_speedup = (
        legacy_total / batched_total if batched_total > 0 else float("inf")
    )

    # --- vectorized kernel: batched vs cross-seed at a large batch -----
    vector_runs = max(64, num_runs)
    vector_seeds = list(range(1, vector_runs + 1))
    for cell in all_cells:
        cell.execute_batch(vector_seeds[:1], mode="vector")
    vector_per_benchmark = {}
    vector_batched_total = vector_total = 0.0
    vector_identical = True
    for benchmark, cells in cells_by_benchmark.items():
        # Interleave the two cores within each repetition (rather than
        # timing one core's repeats back to back) so a load spike on a
        # shared machine biases both sides of the comparison equally.
        batched_s = vector_s = float("inf")
        batched_results = vector_results = None
        for _ in range(_REPEATS):
            start = time.perf_counter()
            batched_results = [cell.execute_batch(vector_seeds, mode="batched")
                               for cell in cells]
            batched_s = min(batched_s, time.perf_counter() - start)
            start = time.perf_counter()
            vector_results = [cell.execute_batch(vector_seeds, mode="vector")
                              for cell in cells]
            vector_s = min(vector_s, time.perf_counter() - start)
        vector_identical = vector_identical and batched_results == vector_results
        vector_batched_total += batched_s
        vector_total += vector_s
        vector_per_benchmark[benchmark] = {
            "batched_s": batched_s,
            "vector_s": vector_s,
            "speedup": batched_s / vector_s if vector_s > 0 else float("inf"),
        }
    vector_speedup = (
        vector_batched_total / vector_total if vector_total > 0
        else float("inf")
    )

    # --- dispatch: serial vs chunked process pool -----------------------
    tasks = [ExecutionTask(cell, seed) for cell in all_cells for seed in seeds]
    serial_backend = SerialBackend()
    serial_backend.execute(tasks[:1])
    serial_s, serial_results = _time_backend(serial_backend, tasks)

    with ProcessPoolBackend() as backend:
        workers = backend._workers()
        # Warm the pool outside the timed region with one task per cell, so
        # the initializer ships the full cell set and the timed repeats
        # never trigger a pool rebuild.
        backend.execute([ExecutionTask(cell, seeds[0]) for cell in all_cells])
        process_s, process_results = _time_backend(backend, tasks)
    backend_identical = process_results == serial_results
    process_speedup = serial_s / process_s if process_s > 0 else float("inf")

    # --- report ---------------------------------------------------------
    payload = {
        "benchmarks": list(BENCHMARKS),
        "designs": list(DESIGNS),
        "num_runs": num_runs,
        "tasks": len(tasks),
        "executor": {
            "legacy_s": legacy_total,
            "batched_s": batched_total,
            "speedup": executor_speedup,
            "identical_results": identical,
            "per_benchmark": per_benchmark,
        },
        "vector": {
            "num_runs": vector_runs,
            "batched_s": vector_batched_total,
            "vector_s": vector_total,
            "speedup": vector_speedup,
            "identical_results": vector_identical,
            "per_benchmark": vector_per_benchmark,
            # The 2-D state carried per gate-stream pass, per benchmark:
            # (batch rows, qubit columns).
            "kernel_dims": {
                benchmark: [vector_runs, cells[0].program.num_qubits]
                for benchmark, cells in cells_by_benchmark.items()
            },
        },
        "dispatch": {
            "serial_s": serial_s,
            "process_s": process_s,
            "speedup": process_speedup,
            "process_workers": workers,
            "cpu_count": os.cpu_count() or 1,
            "identical_results": backend_identical,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "Runtime — batched executor and chunked process dispatch",
        "\n".join([
            f"grid: {len(BENCHMARKS)} benchmarks x {len(DESIGNS)} designs "
            f"x {num_runs} runs ({len(tasks)} tasks)",
            f"legacy executor:  {legacy_total * 1e3:8.1f} ms",
            f"batched executor: {batched_total * 1e3:8.1f} ms "
            f"({executor_speedup:.2f}x, identical={identical})",
            f"batched @ {vector_runs} seeds: {vector_batched_total * 1e3:8.1f} ms",
            f"vector  @ {vector_runs} seeds: {vector_total * 1e3:8.1f} ms "
            f"({vector_speedup:.2f}x, identical={vector_identical})",
            f"serial dispatch:  {serial_s * 1e3:8.1f} ms",
            f"process dispatch: {process_s * 1e3:8.1f} ms "
            f"({process_speedup:.2f}x, {workers} workers, "
            f"identical={backend_identical})",
            f"wrote {OUTPUT_PATH.name}",
        ]),
    )

    # Perf-smoke gate: divergence or a core slowdown fails the run.
    assert identical, "batched executor diverged from the legacy reference"
    assert vector_identical, "vectorized executor diverged from batched"
    assert backend_identical, "process backend diverged from serial"
    assert executor_speedup >= 1.0, (
        f"batched executor slower than legacy ({executor_speedup:.2f}x)"
    )
    # The vectorized kernel's measured advantage at this batch size is
    # 1.1-1.7x on a quiet machine, but the shared entanglement processes
    # bound it (Amdahl) well below the executor-core gap, so shared-CI
    # load noise (±15%) could flip a hard >= 1.0 gate.  Gate with a noise
    # allowance — a real kernel regression lands far below it — and keep
    # the exact speedup in the JSON payload for trend tracking.
    assert vector_speedup >= 0.85, (
        f"vectorized executor regressed vs batched at {vector_runs} seeds "
        f"({vector_speedup:.2f}x)"
    )
