"""Results-at-scale benchmark — columnar ResultSet vs the record path.

Builds a synthetic run store of ``REPRO_BENCH_RECORDS`` records (default
100k — no simulation, the records are generated directly so the benchmark
isolates the *results* layer), writes it once in each shard format, and
measures:

* **load** — ``ResultSet.from_store`` on the npz (columnar) store versus
  materialising every record from the JSONL store the way the
  pre-columnar implementation did (JSON line parse + ``RunRecord`` per
  run),
* **aggregate** — ``aggregate_stream`` consuming npz column blocks versus
  streaming ``RunRecord`` objects (``iter_records``), grouped by
  (benchmark, design),
* **byte-identity** — ``to_json`` of the sets loaded from both stores
  must be identical, so the speed never costs a byte of output.

Acts as part of the CI perf-smoke gate: the run *fails* if the combined
columnar load+aggregate speedup drops below 3x (the acceptance floor is
5x; a quiet machine measures far above it — the margin absorbs shared-CI
noise) or if the outputs diverge.  Emits ``BENCH_results.json`` next to
the repository root; ``repro bench`` records it into the regression
ledger.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
import time
from pathlib import Path

from conftest import emit
from repro.study import ResultSet, RunStore, aggregate_stream
from repro.study.results import RunRecord
from repro.study.store import chunk_layout

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"

BENCHMARKS = ("TLIM-32", "QAOA-r4-32", "QFT-24")
DESIGNS = ("ideal", "original", "no_buf", "adapt_buf")
CHUNK_SIZE = 512

_REPEATS = 3


def _record_count() -> int:
    return int(os.environ.get("REPRO_BENCH_RECORDS", 100_000))


def _synthesize_store(path: Path, shard_format: str, total: int) -> RunStore:
    """Populate a store with a deterministic synthetic grid of records."""
    cells = []
    for benchmark in BENCHMARKS:
        for design in DESIGNS:
            cells.append({"benchmark": benchmark, "design": design})
    seeds_per_cell = total // len(cells)
    store = RunStore(path, chunk_size=CHUNK_SIZE, shard_format=shard_format)
    store.begin(
        "bench-results-synthetic",
        {"name": "bench_results", "num_runs": seeds_per_cell},
        [{**cell, "num_seeds": seeds_per_cell} for cell in cells],
    )
    rng = random.Random(7)
    for chunk in chunk_layout([seeds_per_cell] * len(cells), CHUNK_SIZE):
        cell = cells[chunk.cell]
        records = [
            RunRecord(
                benchmark=cell["benchmark"],
                design=cell["design"],
                seed=chunk.start + i + 1,
                depth=rng.uniform(50.0, 500.0),
                fidelity=rng.uniform(0.5, 1.0),
                num_remote=rng.randrange(0, 64),
                mean_remote_wait=rng.uniform(0.0, 20.0),
                mean_link_fidelity=rng.uniform(0.8, 1.0),
                epr_generated=float(rng.randrange(0, 4096)),
                epr_wasted=float(rng.randrange(0, 512)),
                params={"epr_success_probability": rng.choice((0.2, 0.5, 0.8))},
            )
            for i in range(chunk.count)
        ]
        store.append_chunk(chunk, records)
    store.release()
    return RunStore.load(path)


def _best(fn):
    best = float("inf")
    value = None
    for _ in range(_REPEATS):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_results_benchmark():
    """Time record-backed vs columnar load/aggregate, emit JSON."""
    total = _record_count()
    workdir = Path(tempfile.mkdtemp(prefix="bench-results-"))
    try:
        jsonl_store = _synthesize_store(workdir / "jsonl", "jsonl", total)
        npz_store = _synthesize_store(workdir / "npz", "npz", total)
        records = total - total % (len(BENCHMARKS) * len(DESIGNS))

        # --- load: record materialisation vs columnar -------------------
        # The record path is what every load paid before the columnar
        # backing: parse each JSONL line and build a RunRecord object.
        record_load_s, record_set = _best(
            lambda: ResultSet(list(jsonl_store.iter_records()),
                              metadata=jsonl_store.study))
        columnar_load_s, columnar_set = _best(
            lambda: ResultSet.from_store(npz_store))
        load_speedup = (record_load_s / columnar_load_s
                        if columnar_load_s > 0 else float("inf"))

        # --- aggregate: record stream vs column blocks ------------------
        by = ("benchmark", "design")
        record_agg_s, record_stats = _best(
            lambda: aggregate_stream(jsonl_store.iter_records(),
                                     "depth", by=by))
        columnar_agg_s, columnar_stats = _best(
            lambda: aggregate_stream(npz_store, "depth", by=by))
        agg_speedup = (record_agg_s / columnar_agg_s
                       if columnar_agg_s > 0 else float("inf"))

        combined_record_s = record_load_s + record_agg_s
        combined_columnar_s = columnar_load_s + columnar_agg_s
        combined_speedup = (combined_record_s / combined_columnar_s
                            if combined_columnar_s > 0 else float("inf"))

        # --- byte-identity ----------------------------------------------
        stats_identical = record_stats == columnar_stats
        json_identical = record_set.to_json() == columnar_set.to_json()

        shard_bytes = {
            "jsonl": sum(f.stat().st_size
                         for f in (workdir / "jsonl" / "shards").iterdir()),
            "npz": sum(f.stat().st_size
                       for f in (workdir / "npz" / "shards").iterdir()),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    payload = {
        "records": records,
        "cells": len(BENCHMARKS) * len(DESIGNS),
        "chunk_size": CHUNK_SIZE,
        "load": {
            "record_s": record_load_s,
            "columnar_s": columnar_load_s,
            "speedup": load_speedup,
        },
        "aggregate": {
            "record_s": record_agg_s,
            "columnar_s": columnar_agg_s,
            "speedup": agg_speedup,
        },
        "combined": {
            "record_s": combined_record_s,
            "columnar_s": combined_columnar_s,
            "speedup": combined_speedup,
        },
        "identical_statistics": stats_identical,
        "identical_json": json_identical,
        "shard_bytes": shard_bytes,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "Results at scale — columnar ResultSet and npz shards",
        "\n".join([
            f"store: {records} records, {len(BENCHMARKS) * len(DESIGNS)} "
            f"cells, chunk size {CHUNK_SIZE}",
            f"load   (records):  {record_load_s * 1e3:8.1f} ms",
            f"load   (columnar): {columnar_load_s * 1e3:8.1f} ms "
            f"({load_speedup:.1f}x)",
            f"aggregate (records):  {record_agg_s * 1e3:8.1f} ms",
            f"aggregate (columnar): {columnar_agg_s * 1e3:8.1f} ms "
            f"({agg_speedup:.1f}x)",
            f"combined speedup: {combined_speedup:.1f}x "
            f"(stats identical={stats_identical}, "
            f"json identical={json_identical})",
            f"shard bytes: jsonl={shard_bytes['jsonl']} "
            f"npz={shard_bytes['npz']}",
            f"wrote {OUTPUT_PATH.name}",
        ]),
    )

    assert stats_identical, "columnar aggregation diverged from records"
    assert json_identical, "columnar to_json diverged from record path"
    # Acceptance floor is 5x; gate at 3x so shared-CI load noise cannot
    # flip the build while a real regression (which lands near 1x) still
    # fails loudly.
    assert combined_speedup >= 3.0, (
        f"columnar load+aggregate speedup fell to {combined_speedup:.1f}x"
    )
