"""Ablation benchmarks for the co-design knobs.

The paper's design space has several tunables that the evaluation fixes:
the number of asynchronous sub-groups, the adaptive segment length ``m``,
the buffer consumption policy, and the buffer storage cutoff.  These
ablations quantify their effect on QAOA-r8-32 so downstream users can judge
which choices matter.
"""

from __future__ import annotations

import statistics

import pytest

from conftest import emit, repetitions
from repro.analysis import format_table
from repro.core import DQCSimulator, PAPER_32Q_SYSTEM
from repro.runtime import DesignExecutor, get_design
from repro.scheduling import AdaptivePolicy

BENCHMARK = "QAOA-r8-32"


@pytest.fixture(scope="module")
def simulator():
    return DQCSimulator(system=PAPER_32Q_SYSTEM)


def mean_depth(simulator, design, seeds, **kwargs):
    results = [simulator.simulate(BENCHMARK, design=design, seed=s, **kwargs)
               for s in seeds]
    return statistics.mean(r.depth for r in results)


def test_ablation_async_group_count(benchmark, simulator):
    """Effect of the number of asynchronous sub-groups (Fig. 3 design knob)."""
    seeds = range(1, repetitions() + 1)
    program = simulator.prepare(BENCHMARK)

    def sweep():
        rows = []
        for groups in (1, 2, 5, 10):
            spec = get_design("async_buf").with_overrides(async_groups=groups)
            executor_depths = []
            for seed in seeds:
                executor = DesignExecutor(simulator.architecture, spec, seed=seed)
                executor_depths.append(executor.run(program).depth)
            rows.append([groups, f"{statistics.mean(executor_depths):.1f}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Ablation — asynchronous sub-group count (QAOA-r8-32 depth)",
         format_table(["#sub-groups", "mean depth"], rows))
    fully_async = float(rows[-1][1])
    fully_sync = float(rows[0][1])
    assert fully_async <= fully_sync * 1.1


def test_ablation_segment_length(benchmark, simulator):
    """Effect of the adaptive segment length m (paper default: #comm * psucc)."""
    seeds = range(1, repetitions() + 1)

    def sweep():
        rows = []
        for m in (1, 2, 4, 8, 16):
            depth = mean_depth(simulator, "adapt_buf", seeds, segment_length=m)
            rows.append([m, f"{depth:.1f}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Ablation — adaptive segment length m (QAOA-r8-32 depth)",
         format_table(["m", "mean depth"], rows))
    depths = [float(row[1]) for row in rows]
    assert max(depths) / min(depths) < 1.6


def test_ablation_adaptive_thresholds(benchmark, simulator):
    """Aggressive vs conservative adaptive thresholds."""
    seeds = range(1, repetitions() + 1)

    def sweep():
        rows = []
        for label, policy in (
            ("paper rule (m, 0)", AdaptivePolicy()),
            ("always ASAP-ish (0, 0)", AdaptivePolicy(asap_threshold=0)),
            ("conservative (16, 2)", AdaptivePolicy(asap_threshold=16,
                                                    alap_threshold=2)),
        ):
            depth = mean_depth(simulator, "adapt_buf", seeds, adaptive_policy=policy)
            rows.append([label, f"{depth:.1f}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Ablation — adaptive thresholds (QAOA-r8-32 depth)",
         format_table(["policy", "mean depth"], rows))
    assert len(rows) == 3


def test_ablation_buffer_cutoff(benchmark, simulator):
    """Effect of a buffer storage cutoff (Sec. III-C cutoff policy)."""
    seeds = range(1, repetitions() + 1)
    program = simulator.prepare(BENCHMARK)

    def sweep():
        rows = []
        for cutoff in (None, 20.0, 50.0):
            spec = get_design("async_buf").with_overrides(buffer_cutoff=cutoff)
            depths = []
            fidelities = []
            for seed in seeds:
                executor = DesignExecutor(simulator.architecture, spec, seed=seed)
                result = executor.run(program)
                depths.append(result.depth)
                fidelities.append(result.fidelity)
            rows.append([
                "none" if cutoff is None else f"{cutoff:.0f}",
                f"{statistics.mean(depths):.1f}",
                f"{statistics.mean(fidelities):.3f}",
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Ablation — buffer storage cutoff (QAOA-r8-32)",
         format_table(["cutoff", "mean depth", "mean fidelity"], rows))
    assert len(rows) == 3
