"""Ablation benchmarks for the co-design knobs, as declarative studies.

The paper's design space has several tunables that the evaluation fixes:
the number of asynchronous sub-groups, the adaptive segment length ``m``,
the buffer consumption policy, and the buffer storage cutoff.  These
ablations quantify their effect on QAOA-r8-32 so downstream users can judge
which choices matter.

Each ablation is one :class:`repro.Study` — the knob is an axis
(``segment_length`` / ``adaptive_policy``) or a set of
:class:`~repro.runtime.designs.DesignSpec` overrides on the design axis —
instead of a hand-rolled loop over :class:`DQCSimulator` calls.
"""

from __future__ import annotations

import pytest

from conftest import emit, repetitions
from repro.analysis import format_table
from repro.core import PAPER_32Q_SYSTEM
from repro.runtime import get_design
from repro.scheduling import AdaptivePolicy
from repro.study import Axis, Study

BENCHMARK = "QAOA-r8-32"


def ablation_study(**kwargs) -> Study:
    return Study(benchmarks=BENCHMARK, num_runs=repetitions(), base_seed=1,
                 system=PAPER_32Q_SYSTEM, **kwargs)


def test_ablation_async_group_count(benchmark):
    """Effect of the number of asynchronous sub-groups (Fig. 3 design knob)."""
    group_counts = (1, 2, 5, 10)
    study = ablation_study(designs=[
        get_design("async_buf").with_overrides(async_groups=groups,
                                               name=f"async_buf[g={groups}]")
        for groups in group_counts
    ])

    results = benchmark.pedantic(study.run, rounds=1, iterations=1)
    depth = results.aggregate("depth", by=["design"])
    rows = [[groups, f"{depth[f'async_buf[g={groups}]'].mean:.1f}"]
            for groups in group_counts]
    emit("Ablation — asynchronous sub-group count (QAOA-r8-32 depth)",
         format_table(["#sub-groups", "mean depth"], rows))
    fully_sync = float(rows[0][1])
    fully_async = float(rows[-1][1])
    assert fully_async <= fully_sync * 1.1


def test_ablation_segment_length(benchmark):
    """Effect of the adaptive segment length m (paper default: #comm * psucc)."""
    study = ablation_study(designs="adapt_buf",
                           axes={"segment_length": [1, 2, 4, 8, 16]})

    results = benchmark.pedantic(study.run, rounds=1, iterations=1)
    depth = results.aggregate("depth", by=["segment_length"])
    rows = [[m, f"{depth[m].mean:.1f}"] for m in (1, 2, 4, 8, 16)]
    emit("Ablation — adaptive segment length m (QAOA-r8-32 depth)",
         format_table(["m", "mean depth"], rows))
    depths = [float(row[1]) for row in rows]
    assert max(depths) / min(depths) < 1.6


def test_ablation_adaptive_thresholds(benchmark):
    """Aggressive vs conservative adaptive thresholds."""
    policies = (
        ("paper rule (m, 0)", AdaptivePolicy()),
        ("always ASAP-ish (0, 0)", AdaptivePolicy(asap_threshold=0)),
        ("conservative (16, 2)", AdaptivePolicy(asap_threshold=16,
                                                alap_threshold=2)),
    )
    study = ablation_study(designs="adapt_buf",
                           axes=[Axis("adaptive_policy",
                                      [policy for _, policy in policies])])

    results = benchmark.pedantic(study.run, rounds=1, iterations=1)
    # Non-primitive axis coordinates appear in the records as their stable
    # repr token, so the set stays groupable by policy.
    depth = results.aggregate("depth", by=["adaptive_policy"])
    rows = [[label, f"{depth[repr(policy)].mean:.1f}"]
            for label, policy in policies]
    emit("Ablation — adaptive thresholds (QAOA-r8-32 depth)",
         format_table(["policy", "mean depth"], rows))
    assert len(rows) == 3


def test_ablation_buffer_cutoff(benchmark):
    """Effect of a buffer storage cutoff (Sec. III-C cutoff policy)."""
    cutoffs = (None, 20.0, 50.0)
    study = ablation_study(designs=[
        get_design("async_buf").with_overrides(
            buffer_cutoff=cutoff,
            name=f"async_buf[cutoff={cutoff}]")
        for cutoff in cutoffs
    ])

    results = benchmark.pedantic(study.run, rounds=1, iterations=1)
    depth = results.aggregate("depth", by=["design"])
    fidelity = results.aggregate("fidelity", by=["design"])
    rows = []
    for cutoff in cutoffs:
        design = f"async_buf[cutoff={cutoff}]"
        rows.append([
            "none" if cutoff is None else f"{cutoff:.0f}",
            f"{depth[design].mean:.1f}",
            f"{fidelity[design].mean:.3f}",
        ])
    emit("Ablation — buffer storage cutoff (QAOA-r8-32)",
         format_table(["cutoff", "mean depth", "mean fidelity"], rows))
    assert len(rows) == 3
