"""Figure 8 — 64-qubit QAOA benchmarks on the larger 2-node system.

Regenerates the depth comparison of QAOA-r4-64 and QAOA-r8-64 on a 2-node
system with 32 data, 20 communication, and 20 buffer qubits per node
(Sec. V-C) and checks that the proposed designs keep reducing depth at the
larger scale.
"""

from __future__ import annotations

import pytest

from conftest import backend_name, emit, repetitions
from repro.analysis import comparison_report, relative_depth_report
from repro.core import PAPER_64Q_SYSTEM
from repro.study import Study

BENCHMARKS_64Q = ["QAOA-r4-64", "QAOA-r8-64"]


@pytest.fixture(scope="module")
def fig8_results():
    with Study(benchmarks=BENCHMARKS_64Q, num_runs=repetitions(),
               system=PAPER_64Q_SYSTEM, base_seed=31,
               backend=backend_name(), name="fig8-depth-64q") as study:
        return study.run().to_comparisons()


def test_fig8_depth_series(benchmark, fig8_results):
    """Print the Fig. 8 panels and check the 64-qubit orderings."""
    def render():
        return relative_depth_report(fig8_results.values())

    emit("Figure 8 — 64-qubit depth relative to ideal",
         benchmark.pedantic(render, rounds=1, iterations=1))
    for name, comparison in fig8_results.items():
        emit(f"Figure 8 panel — {name}", comparison_report(comparison, "depth"))

    for comparison in fig8_results.values():
        depth = comparison.depth_table()
        assert depth["sync_buf"] < depth["original"]
        assert depth["async_buf"] <= depth["sync_buf"] * 1.05
        assert depth["init_buf"] <= depth["sync_buf"]
        # The ideal monolithic execution is essentially the lower bound; the
        # adaptive designs may sneak slightly below it on shallow circuits
        # because their ASAP reordering shortens the dependency critical path,
        # an optimisation the fixed-order ideal baseline does not apply.
        assert depth["ideal"] <= depth["init_buf"] * 1.15


def test_fig8_init_buf_reduction_vs_sync(fig8_results):
    """init_buf reduces depth versus sync_buf at 64 qubits (paper: 12%)."""
    reductions = {
        name: comparison.depth_reduction_vs("sync_buf", "init_buf")
        for name, comparison in fig8_results.items()
    }
    emit("Figure 8 — init_buf depth reduction vs sync_buf",
         ", ".join(f"{name}: {value:.1%}" for name, value in reductions.items())
         + "   (paper: ~12%)")
    assert all(value >= 0.0 for value in reductions.values())
