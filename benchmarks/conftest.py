"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series.  The number of stochastic repetitions per cell is
controlled by the ``REPRO_RUNS`` environment variable (default 3 so the whole
harness completes in a couple of minutes; the paper uses 50).  The execution
backend of the figure sweeps is controlled by ``REPRO_BACKEND`` (``serial``
by default; set ``process`` to fan the seed × cell grid out across cores —
results are identical by construction).
"""

from __future__ import annotations

import os

import pytest


def repetitions(default: int = 3) -> int:
    """Number of stochastic repetitions per (benchmark, design) cell."""
    return int(os.environ.get("REPRO_RUNS", default))


def backend_name(default: str = "serial") -> str:
    """Execution backend used by the figure sweeps."""
    return os.environ.get("REPRO_BACKEND", default)


@pytest.fixture(scope="session")
def num_runs() -> int:
    """Session-wide repetition count."""
    return repetitions()


def emit(title: str, body: str) -> None:
    """Print one labelled report block."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)
