"""Figure 5 — circuit depth of the 32-qubit benchmarks across designs.

Regenerates, for TLIM-32, QAOA-r4-32, QAOA-r8-32, and QFT-32 on the paper's
2-node 32-data-qubit system (10 communication + 10 buffer qubits per node,
psucc = 0.4), the mean circuit depth of every design and its value relative
to the ideal monolithic execution — the series plotted in Fig. 5.
"""

from __future__ import annotations

import pytest

from conftest import backend_name, emit, repetitions
from repro.analysis import comparison_report, relative_depth_report
from repro.core import PAPER_32Q_SYSTEM
from repro.study import Study

BENCHMARKS_32Q = ["TLIM-32", "QAOA-r4-32", "QAOA-r8-32", "QFT-32"]


@pytest.fixture(scope="module")
def fig5_results():
    with Study(benchmarks=BENCHMARKS_32Q, num_runs=repetitions(),
               system=PAPER_32Q_SYSTEM, base_seed=1,
               backend=backend_name(), name="fig5-depth-32q") as study:
        return study.run().to_comparisons()


def test_fig5_depth_series(benchmark, fig5_results):
    """Print the Fig. 5 depth panels and check the paper's ordering."""
    def summary():
        return relative_depth_report(fig5_results.values())

    emit("Figure 5 — depth relative to ideal (all designs)",
         benchmark.pedantic(summary, rounds=1, iterations=1))
    for name, comparison in fig5_results.items():
        emit(f"Figure 5 panel — {name}", comparison_report(comparison, "depth"))

    for name, comparison in fig5_results.items():
        depth = comparison.depth_table()
        # Buffering is the dominant effect (paper: ~60 % average reduction).
        assert depth["sync_buf"] < depth["original"]
        # Asynchronous generation does not hurt and usually helps.
        assert depth["async_buf"] <= depth["sync_buf"] * 1.05
        # Adaptive scheduling never hurts the asynchronous design.
        assert depth["adapt_buf"] <= depth["async_buf"] * 1.05
        # Pre-initialised buffers give the lowest depth of the buffered designs.
        assert depth["init_buf"] <= depth["adapt_buf"] * 1.02
        # The ideal monolithic execution is the lower bound.
        assert depth["ideal"] <= depth["init_buf"] + 1e-9


def test_fig5_buffering_reduction_magnitude(fig5_results):
    """The average depth reduction of sync_buf vs original is large (paper: 61.7%)."""
    reductions = []
    for comparison in fig5_results.values():
        depth = comparison.depth_table()
        reductions.append(1.0 - depth["sync_buf"] / depth["original"])
    average = sum(reductions) / len(reductions)
    emit("Figure 5 — average depth reduction from buffering",
         f"mean reduction sync_buf vs original: {average:.1%} (paper: 61.7%)")
    assert average > 0.3
