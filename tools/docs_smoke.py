#!/usr/bin/env python3
"""Execute every fenced ``bash`` block in ``docs/*.md`` as a smoke test.

Documentation that is not executed rots; this runner keeps every shell
example in the docs tree honest by actually running it:

* blocks fenced as ```` ```bash ```` are executed with
  ``bash -euo pipefail`` — any failing command fails the run;
* all blocks of one page share a scratch working directory (so a page can
  build on files created by its earlier blocks) and pages are isolated
  from each other and from the repository checkout;
* ``PYTHONPATH`` points at the checkout's ``src`` and the repetition knobs
  (``RUNS``, ``REPRO_RUNS``) default to 1 so paper-scale commands written
  as ``--runs "${RUNS:-50}"`` complete in seconds;
* a block whose first line is ``# docs-smoke: skip`` is reported but not
  run (escape hatch for genuinely non-executable snippets — currently
  none).

Usage::

    python tools/docs_smoke.py            # run everything
    python tools/docs_smoke.py docs/cli.md  # one page
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SKIP_MARKER = "# docs-smoke: skip"

_FENCE = re.compile(r"^```bash\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def extract_blocks(page: Path) -> List[str]:
    """The page's ``bash`` fenced blocks, in document order."""
    return [match.group(1).strip()
            for match in _FENCE.finditer(page.read_text())]


def run_page(page: Path) -> Tuple[int, int]:
    """Run one page's blocks in a shared scratch dir; (ran, skipped)."""
    blocks = extract_blocks(page)
    if not blocks:
        print(f"{page}: no bash blocks")
        return 0, 0
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    env.setdefault("RUNS", "1")
    env.setdefault("REPRO_RUNS", "1")
    ran = skipped = 0
    with tempfile.TemporaryDirectory(prefix="docs-smoke-") as scratch:
        for index, block in enumerate(blocks, start=1):
            label = f"{page}#{index}"
            lines = block.splitlines()
            if not lines or lines[0].strip() == SKIP_MARKER:
                print(f"SKIP {label}")
                skipped += 1
                continue
            started = time.monotonic()
            result = subprocess.run(
                ["bash", "-euo", "pipefail", "-c", block],
                cwd=scratch, env=env, capture_output=True, text=True,
            )
            elapsed = time.monotonic() - started
            if result.returncode != 0:
                print(f"FAIL {label} (exit {result.returncode})")
                print("--- block " + "-" * 52)
                print(block)
                print("--- stdout " + "-" * 51)
                print(result.stdout)
                print("--- stderr " + "-" * 51)
                print(result.stderr)
                sys.exit(1)
            print(f"ok   {label} ({elapsed:.1f}s)")
            ran += 1
    return ran, skipped


def main(argv: List[str]) -> int:
    pages = ([Path(arg) for arg in argv]
             or sorted((REPO_ROOT / "docs").glob("*.md")))
    total_ran = total_skipped = 0
    for page in pages:
        ran, skipped = run_page(page)
        total_ran += ran
        total_skipped += skipped
    print(f"docs smoke: {total_ran} block(s) ran, {total_skipped} skipped, "
          f"{len(pages)} page(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
