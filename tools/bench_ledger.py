#!/usr/bin/env python3
"""Bench regression ledger — the CI entry point for ``repro bench``.

Appends each perf-smoke run's ``BENCH_*.json`` metrics to an append-only
history ledger and gates the current run against a rolling-median baseline
with a noise allowance (see ``src/repro/analysis/ledger.py`` and
``docs/results.md``)::

    python tools/bench_ledger.py check  --ledger .ci/bench-ledger.jsonl BENCH_runtime.json
    python tools/bench_ledger.py record --ledger .ci/bench-ledger.jsonl BENCH_runtime.json

``check`` exits non-zero naming the regressed metric and its baseline;
``record`` durably appends the run.  Equivalent to ``python -m repro
bench`` with the same arguments; this wrapper only adds the ``src/`` path
bootstrap so CI can invoke it from a bare checkout.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))


def main(argv=None):
    from repro.study.cli import main as repro_main

    return repro_main(["bench", *(argv if argv is not None
                                  else sys.argv[1:])])


if __name__ == "__main__":
    sys.exit(main())
