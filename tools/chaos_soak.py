#!/usr/bin/env python3
"""Chaos soak runner — the CI entry point for ``repro chaos``.

Runs N seeded random fault schedules over the fleet + service + store
stack and byte-compares every surviving run against a clean serial
baseline (see ``src/repro/faults/chaos.py`` and ``docs/robustness.md``).
Exits non-zero if any schedule diverges or fails to complete::

    python tools/chaos_soak.py --schedules 3 --seed 9 --out soak_report.json

Equivalent to ``python -m repro chaos`` with the same flags; this wrapper
only adds the ``src/`` path bootstrap so CI can invoke it from a bare
checkout.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))


def main(argv=None):
    from repro.study.cli import main as repro_main

    return repro_main(["chaos", *(argv if argv is not None
                                  else sys.argv[1:])])


if __name__ == "__main__":
    sys.exit(main())
